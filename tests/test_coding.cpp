// GF(2) linear algebra and the network-coded swarm (ref. [5] baseline).
#include <gtest/gtest.h>

#include <set>

#include "coding/coded_swarm.hpp"
#include "coding/gf2.hpp"

namespace mpbt::coding {
namespace {

TEST(Gf2, UnitVectorsAndWords) {
  EXPECT_EQ(gf2_words(1), 1u);
  EXPECT_EQ(gf2_words(64), 1u);
  EXPECT_EQ(gf2_words(65), 2u);
  const Gf2Vector e3 = gf2_unit(70, 3);
  EXPECT_EQ(e3[0], 8u);
  EXPECT_EQ(e3[1], 0u);
  const Gf2Vector e66 = gf2_unit(70, 66);
  EXPECT_EQ(e66[0], 0u);
  EXPECT_EQ(e66[1], 4u);
  EXPECT_THROW(gf2_unit(10, 10), std::out_of_range);
}

TEST(Gf2, InsertGrowsRankOnlyWhenInnovative) {
  Gf2Basis basis(8);
  EXPECT_EQ(basis.rank(), 0u);
  EXPECT_TRUE(basis.insert(gf2_unit(8, 0)));
  EXPECT_TRUE(basis.insert(gf2_unit(8, 1)));
  EXPECT_EQ(basis.rank(), 2u);
  // e0 ^ e1 lies in the span.
  Gf2Vector combo = gf2_unit(8, 0);
  combo[0] ^= gf2_unit(8, 1)[0];
  EXPECT_FALSE(basis.insert(combo));
  EXPECT_EQ(basis.rank(), 2u);
  EXPECT_TRUE(basis.contains(gf2_unit(8, 0)));
  EXPECT_FALSE(basis.contains(gf2_unit(8, 2)));
  // The zero vector is always contained, never innovative.
  EXPECT_TRUE(basis.contains(Gf2Vector(gf2_words(8), 0)));
  EXPECT_FALSE(basis.insert(Gf2Vector(gf2_words(8), 0)));
}

TEST(Gf2, FullRankFromUnits) {
  const std::size_t dims = 70;  // crosses a word boundary
  Gf2Basis basis(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    EXPECT_TRUE(basis.insert(gf2_unit(dims, i)));
  }
  EXPECT_TRUE(basis.full());
}

TEST(Gf2, RandomVectorsReachFullRank) {
  // Random GF(2) vectors are innovative with probability >= 1/2, so a
  // full basis forms after roughly 2 * dims draws.
  const std::size_t dims = 40;
  Gf2Basis basis(dims);
  numeric::Rng rng(3);
  int draws = 0;
  while (!basis.full() && draws < 1000) {
    Gf2Vector v(gf2_words(dims), 0);
    for (std::size_t i = 0; i < dims; ++i) {
      if (rng.bernoulli(0.5)) {
        v[i / 64] ^= 1ULL << (i % 64);
      }
    }
    basis.insert(std::move(v));
    ++draws;
  }
  EXPECT_TRUE(basis.full());
  EXPECT_LT(draws, 200);
}

TEST(Gf2, RandomCombinationStaysInSpan) {
  Gf2Basis basis(16);
  basis.insert(gf2_unit(16, 2));
  basis.insert(gf2_unit(16, 5));
  basis.insert(gf2_unit(16, 9));
  numeric::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Gf2Vector v = basis.random_combination(rng);
    EXPECT_TRUE(basis.contains(v));
    // Never zero for a non-empty basis.
    bool zero = true;
    for (std::uint64_t w : v) {
      zero = zero && w == 0;
    }
    EXPECT_FALSE(zero);
  }
}

TEST(Gf2, CanHelpAndInnovativeFor) {
  Gf2Basis teacher(12);
  teacher.insert(gf2_unit(12, 0));
  teacher.insert(gf2_unit(12, 1));
  Gf2Basis student(12);
  student.insert(gf2_unit(12, 0));
  EXPECT_TRUE(teacher.can_help(student));
  EXPECT_FALSE(student.can_help(teacher));
  numeric::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Gf2Vector lesson = teacher.innovative_for(student, rng);
    EXPECT_FALSE(student.contains(lesson));
    EXPECT_TRUE(teacher.contains(lesson));
  }
  EXPECT_THROW(student.innovative_for(teacher, rng), std::invalid_argument);
}

TEST(Gf2, EqualSpansCannotHelpEachOther) {
  Gf2Basis a(10);
  Gf2Basis b(10);
  for (std::size_t i : {1u, 3u, 7u}) {
    a.insert(gf2_unit(10, i));
    b.insert(gf2_unit(10, i));
  }
  // b's basis differs in representation (a sum), spans are equal.
  Gf2Vector mix = gf2_unit(10, 1);
  mix[0] ^= gf2_unit(10, 3)[0];
  b.insert(mix);
  EXPECT_EQ(a.rank(), b.rank());
  EXPECT_FALSE(a.can_help(b));
  EXPECT_FALSE(b.can_help(a));
}

CodedSwarmConfig small_coded() {
  CodedSwarmConfig config;
  config.num_pieces = 30;
  config.max_connections = 3;
  config.peer_set_size = 10;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seed = 23;
  return config;
}

TEST(CodedSwarm, DownloadsComplete) {
  CodedSwarm swarm(small_coded());
  swarm.run_rounds(150);
  EXPECT_GT(swarm.completed_count(), 20u);
  for (double t : swarm.completion_times()) {
    EXPECT_GE(t, static_cast<double>(30) / (2 * 3));  // rank grows <= 2k/round
  }
}

TEST(CodedSwarm, SmartEncodingWastesNothing) {
  CodedSwarmConfig config = small_coded();
  config.smart_encoding = true;
  CodedSwarm swarm(std::move(config));
  swarm.run_rounds(100);
  EXPECT_GT(swarm.transmissions(), 500u);
  EXPECT_EQ(swarm.wasted_fraction(), 0.0);
}

TEST(CodedSwarm, BlindEncodingWastesSome) {
  CodedSwarmConfig config = small_coded();
  config.smart_encoding = false;
  CodedSwarm swarm(std::move(config));
  swarm.run_rounds(100);
  EXPECT_GT(swarm.wasted_transmissions(), 0u);
  EXPECT_LT(swarm.wasted_fraction(), 0.8);
}

TEST(CodedSwarm, NoLastRankProblem) {
  // The coded swarm's final rank increments are no slower than its middle
  // ones — the defining contrast with piece-based last-piece stalls.
  CodedSwarm swarm(small_coded());
  swarm.run_rounds(200);
  const double mid = swarm.rank_ttd(15);
  const double last = swarm.rank_ttd(30);
  ASSERT_GT(mid, 0.0);
  ASSERT_GT(last, 0.0);
  EXPECT_LT(last, mid * 3.0);
}

TEST(CodedSwarm, DeterministicForSeed) {
  CodedSwarm a(small_coded());
  CodedSwarm b(small_coded());
  a.run_rounds(60);
  b.run_rounds(60);
  EXPECT_EQ(a.completed_count(), b.completed_count());
  EXPECT_EQ(a.transmissions(), b.transmissions());
}

TEST(CodedSwarm, ConfigValidation) {
  CodedSwarmConfig config;
  config.num_pieces = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CodedSwarmConfig{};
  config.arrival_rate = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(CodedSwarmConfig{}.validate());
}

}  // namespace
}  // namespace mpbt::coding
