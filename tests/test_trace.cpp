#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/archetypes.hpp"
#include "trace/filter.hpp"
#include "trace/io.hpp"
#include "trace/record.hpp"

namespace mpbt::trace {
namespace {

ClientTrace sample_trace() {
  ClientTrace trace;
  trace.label = "sample client";
  trace.num_pieces = 50;
  trace.piece_bytes = 262144;
  trace.completed = true;
  trace.points = {{0.0, 0, 0, 0}, {1.0, 262144, 2, 1}, {2.0, 524288, 5, 2}};
  return trace;
}

TEST(TraceRecord, FromClientRecord) {
  bt::ClientRecord record;
  record.peer = 9;
  record.joined = 4;
  record.completed = true;
  record.samples.push_back({5, 1000, 3, 10, 1, 2});
  record.samples.push_back({6, 2000, 4, 10, 2, 2});
  const ClientTrace trace = from_client_record(record, 50, 262144, "x");
  EXPECT_EQ(trace.label, "x");
  EXPECT_EQ(trace.num_pieces, 50u);
  EXPECT_TRUE(trace.completed);
  ASSERT_EQ(trace.points.size(), 2u);
  EXPECT_EQ(trace.points[0].time, 5.0);
  EXPECT_EQ(trace.points[1].cumulative_bytes, 2000u);
  EXPECT_EQ(trace.points[1].potential_set_size, 4u);
  EXPECT_EQ(trace.final_bytes(), 2000u);
}

TEST(TraceIo, RoundTripThroughStream) {
  const ClientTrace original = sample_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  const ClientTrace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.label, original.label);
  EXPECT_EQ(loaded.num_pieces, original.num_pieces);
  EXPECT_EQ(loaded.piece_bytes, original.piece_bytes);
  EXPECT_EQ(loaded.completed, original.completed);
  ASSERT_EQ(loaded.points.size(), original.points.size());
  for (std::size_t i = 0; i < loaded.points.size(); ++i) {
    EXPECT_EQ(loaded.points[i].time, original.points[i].time);
    EXPECT_EQ(loaded.points[i].cumulative_bytes, original.points[i].cumulative_bytes);
    EXPECT_EQ(loaded.points[i].potential_set_size, original.points[i].potential_set_size);
    EXPECT_EQ(loaded.points[i].pieces_held, original.points[i].pieces_held);
  }
}

TEST(TraceIo, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/mpbt_trace_test.txt";
  save_trace(path, sample_trace());
  const ClientTrace loaded = load_trace(path);
  EXPECT_EQ(loaded.points.size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW(load_trace(path), std::runtime_error);
}

TEST(TraceIo, MalformedInputsRejected) {
  {
    std::stringstream bad("not a trace\n");
    EXPECT_THROW(read_trace(bad), std::runtime_error);
  }
  {
    std::stringstream bad("mpbt-trace v1\nnolabel\n");
    EXPECT_THROW(read_trace(bad), std::runtime_error);
  }
  {
    std::stringstream bad("mpbt-trace v1\nlabel x\npieces 5 piece_bytes 100 completed 1\npoints 2\n1 2 3 4\n");
    EXPECT_THROW(read_trace(bad), std::runtime_error);  // truncated points
  }
  {
    std::stringstream bad(
        "mpbt-trace v1\nlabel x\npieces 5 piece_bytes 100 completed 1\npoints 1\nbad line here\n");
    EXPECT_THROW(read_trace(bad), std::runtime_error);
  }
}

TEST(TraceIo, CsvExport) {
  const ClientTrace trace = sample_trace();
  std::stringstream buffer;
  write_trace_csv(buffer, trace);
  const std::string out = buffer.str();
  EXPECT_NE(out.find("time,cumulative_bytes,potential_set_size,pieces_held"),
            std::string::npos);
  EXPECT_NE(out.find("2,524288,5,2"), std::string::npos);
  // One header + one line per point.
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')),
            trace.points.size() + 1);
}

TEST(TraceIo, CsvFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mpbt_trace_csv_test.csv";
  save_trace_csv(path, sample_trace());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time,cumulative_bytes,potential_set_size,pieces_held");
  std::remove(path.c_str());
}

TEST(TraceIo, LabelWithSpacesSurvives) {
  ClientTrace trace = sample_trace();
  trace.label = "swarm 42, client #3";
  std::stringstream buffer;
  write_trace(buffer, trace);
  EXPECT_EQ(read_trace(buffer).label, "swarm 42, client #3");
}

TEST(SyntheticStats, StableSeriesIsStable) {
  const SwarmStatsSeries stable = make_stable_stats(3);
  ASSERT_GE(stable.hourly_peers.size(), 8u);
  EXPECT_EQ(classify_swarm(stable), SwarmClass::Stable);
  EXPECT_TRUE(is_measurable(stable));
}

TEST(SyntheticStats, FlashCrowdDetected) {
  const SwarmStatsSeries flash = make_flash_crowd_stats(3);
  EXPECT_EQ(classify_swarm(flash), SwarmClass::FlashCrowd);
  EXPECT_FALSE(is_measurable(flash));
}

TEST(SyntheticStats, DyingSwarmDetected) {
  const SwarmStatsSeries dying = make_dying_stats(3);
  EXPECT_EQ(classify_swarm(dying), SwarmClass::Dying);
  EXPECT_FALSE(is_measurable(dying));
}

TEST(Filter, ShortSeriesNotMeasurable) {
  SwarmStatsSeries tiny;
  tiny.hourly_peers = {100, 100, 100};
  EXPECT_EQ(classify_swarm(tiny), SwarmClass::Dying);
}

TEST(Filter, ThresholdsControlFlashSensitivity) {
  SwarmStatsSeries series;
  for (int h = 0; h < 24; ++h) {
    series.hourly_peers.push_back(h < 12 ? 100 : 160);  // 1.6x growth
  }
  FilterThresholds strict;
  strict.flash_growth_factor = 1.5;
  EXPECT_EQ(classify_swarm(series, strict), SwarmClass::FlashCrowd);
  FilterThresholds lenient;
  lenient.flash_growth_factor = 2.0;
  EXPECT_EQ(classify_swarm(series, lenient), SwarmClass::Stable);
}

TEST(Filter, ClassNames) {
  EXPECT_EQ(swarm_class_name(SwarmClass::Stable), "stable");
  EXPECT_EQ(swarm_class_name(SwarmClass::FlashCrowd), "flash-crowd");
  EXPECT_EQ(swarm_class_name(SwarmClass::Dying), "dying");
}

}  // namespace
}  // namespace mpbt::trace
