#include "numeric/logbinom.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpbt::numeric {
namespace {

TEST(LogChoose, SmallValuesExact) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 3)), 120.0, 1e-7);
  EXPECT_NEAR(std::exp(log_choose(6, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_choose(6, 6)), 1.0, 1e-12);
}

TEST(LogChoose, OutOfRangeIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_choose(5, 6)));
  EXPECT_LT(log_choose(5, 6), 0.0);
  EXPECT_TRUE(std::isinf(log_choose(5, -1)));
  EXPECT_THROW(log_choose(-1, 0), std::invalid_argument);
}

TEST(LogChoose, Symmetry) {
  for (int n = 1; n <= 50; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_choose(n, k), log_choose(n, n - k), 1e-9) << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogChoose, LargeValuesStable) {
  // C(2000, 1000) overflows double; its log must still be finite.
  const double v = log_choose(2000, 1000);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 1000.0);
}

TEST(ChooseRatio, KnownValues) {
  // C(2,1)/C(4,1) = 2/4.
  EXPECT_NEAR(choose_ratio(2, 1, 4), 0.5, 1e-12);
  // C(3,2)/C(4,2) = 3/6.
  EXPECT_NEAR(choose_ratio(3, 2, 4), 0.5, 1e-12);
  // j < m: impossible subset containment.
  EXPECT_EQ(choose_ratio(1, 2, 4), 0.0);
  // j = B: certain.
  EXPECT_NEAR(choose_ratio(4, 2, 4), 1.0, 1e-12);
}

TEST(ChooseRatio, Bounds) {
  for (int B : {5, 20, 100}) {
    for (int m = 0; m <= B; ++m) {
      for (int j = 0; j <= B; ++j) {
        const double r = choose_ratio(j, m, B);
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0 + 1e-12);
      }
    }
  }
}

TEST(ChooseRatio, MonotoneInJ) {
  // A larger j-subset is more likely to contain the m fixed items.
  const int B = 30;
  const int m = 5;
  double prev = -1.0;
  for (int j = 0; j <= B; ++j) {
    const double r = choose_ratio(j, m, B);
    EXPECT_GE(r, prev - 1e-12);
    prev = r;
  }
}

TEST(ChooseRatio, RejectsBadArguments) {
  EXPECT_THROW(choose_ratio(0, 5, 4), std::invalid_argument);
  EXPECT_THROW(choose_ratio(5, 0, 4), std::invalid_argument);
  EXPECT_THROW(choose_ratio(0, 0, -1), std::invalid_argument);
}

TEST(BinomialPmf, KnownValues) {
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 0, 0.2), 0.512, 1e-12);
  EXPECT_EQ(binomial_pmf(3, -1, 0.2), 0.0);
  EXPECT_EQ(binomial_pmf(3, 4, 0.2), 0.0);
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 3, 0.0), 0.0);
  EXPECT_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 2, 1.0), 0.0);
}

struct PmfCase {
  int n;
  double p;
};

class BinomialPmfVector : public ::testing::TestWithParam<PmfCase> {};

TEST_P(BinomialPmfVector, SumsToOneAndMatchesPointwise) {
  const auto [n, p] = GetParam();
  const auto pmf = binomial_pmf_vector(n, p);
  ASSERT_EQ(pmf.size(), static_cast<std::size_t>(n) + 1);
  double sum = 0.0;
  for (int k = 0; k <= n; ++k) {
    EXPECT_NEAR(pmf[static_cast<std::size_t>(k)], binomial_pmf(n, k, p), 1e-9)
        << "n=" << n << " k=" << k;
    sum += pmf[static_cast<std::size_t>(k)];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinomialPmfVector,
                         ::testing::Values(PmfCase{0, 0.5}, PmfCase{1, 0.3}, PmfCase{10, 0.5},
                                           PmfCase{50, 0.01}, PmfCase{50, 0.99},
                                           PmfCase{200, 0.5}, PmfCase{2000, 0.4},
                                           PmfCase{10, 0.0}, PmfCase{10, 1.0}));

TEST(BinomialCdf, MatchesPmfSum) {
  const int n = 20;
  const double p = 0.3;
  double acc = 0.0;
  for (int k = 0; k <= n; ++k) {
    acc += binomial_pmf(n, k, p);
    EXPECT_NEAR(binomial_cdf(n, k, p), std::min(acc, 1.0), 1e-9);
  }
  EXPECT_EQ(binomial_cdf(n, -1, p), 0.0);
  EXPECT_EQ(binomial_cdf(n, n + 5, p), 1.0);
}

TEST(BinomialSumPmf, MatchesDirectConvolution) {
  const auto sum_pmf = binomial_sum_pmf(3, 0.4, 2, 0.7);
  ASSERT_EQ(sum_pmf.size(), 6u);
  double total = 0.0;
  for (int v = 0; v <= 5; ++v) {
    double expected = 0.0;
    for (int a = 0; a <= v; ++a) {
      expected += binomial_pmf(3, a, 0.4) * binomial_pmf(2, v - a, 0.7);
    }
    EXPECT_NEAR(sum_pmf[static_cast<std::size_t>(v)], expected, 1e-12);
    total += sum_pmf[static_cast<std::size_t>(v)];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BinomialSumPmf, ZeroTrialComponents) {
  const auto pmf = binomial_sum_pmf(0, 0.5, 3, 0.5);
  ASSERT_EQ(pmf.size(), 4u);
  EXPECT_NEAR(pmf[0], 0.125, 1e-12);

  const auto both_zero = binomial_sum_pmf(0, 0.1, 0, 0.9);
  ASSERT_EQ(both_zero.size(), 1u);
  EXPECT_NEAR(both_zero[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace mpbt::numeric
