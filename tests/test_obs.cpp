// Tests for the src/obs observability layer: ring-buffer tracing, the
// lock-free metrics registry, wall-time profiling, the Chrome-trace
// exporter, and — most importantly — the non-perturbation contract:
// tracing must never change what a simulation computes.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bt/config.hpp"
#include "bt/swarm.hpp"
#include "des/engine.hpp"
#include "exp/metrics_export.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "exp/thread_pool.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace {

using namespace mpbt;

// --- TraceRecorder ring buffer ----------------------------------------------

TEST(TraceRecorder, KeepsEventsInOrderBelowCapacity) {
  obs::TraceRecorder recorder(8);
  recorder.peer_join(0, 1, false);
  recorder.piece_acquired(1, 1, 7);
  recorder.peer_complete(5, 1, 5.0);

  const std::vector<obs::TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, obs::EventType::kPeerJoin);
  EXPECT_EQ(events[1].type, obs::EventType::kPieceAcquired);
  EXPECT_EQ(events[1].value, 7.0);
  EXPECT_EQ(events[2].type, obs::EventType::kPeerComplete);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 3u);
}

TEST(TraceRecorder, WrapsAroundKeepingMostRecentAndCountsDrops) {
  obs::TraceRecorder recorder(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    recorder.peer_set_shake(i, i);  // round = peer = i
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);

  const std::vector<obs::TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].round, 6u + i) << "oldest-first order after wrap";
  }
}

TEST(TraceRecorder, ClearResetsEverything) {
  obs::TraceRecorder recorder(2);
  recorder.peer_join(0, 0, false);
  recorder.peer_join(0, 1, false);
  recorder.peer_join(0, 2, false);
  EXPECT_EQ(recorder.dropped(), 1u);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  recorder.peer_join(3, 9, true);
  const std::vector<obs::TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].peer, 9u);
  EXPECT_EQ(events[0].value, 1.0) << "as_seed flag";
}

// --- metrics: histogram bucket edges ----------------------------------------

TEST(Histogram, InclusiveUpperEdgesAndOverflow) {
  obs::Histogram hist({1.0, 2.0});
  hist.observe(0.5);   // <= 1.0 -> bucket 0
  hist.observe(1.0);   // == edge -> bucket 0 (inclusive)
  hist.observe(1.5);   // bucket 1
  hist.observe(2.0);   // == edge -> bucket 1
  hist.observe(2.5);   // overflow
  const std::vector<std::uint64_t> buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 2.5);
}

TEST(Histogram, RejectsMismatchedBoundsOnReLookup) {
  obs::Registry registry;
  registry.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(HistogramSnapshot, QuantileAndMean) {
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h", {10.0, 20.0, 40.0});
  for (int i = 0; i < 9; ++i) {
    hist.observe(5.0);
  }
  hist.observe(15.0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_LE(snap.histograms[0].quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].mean(), (9 * 5.0 + 15.0) / 10.0);
}

// --- metrics: concurrent accumulation under the pool ------------------------

TEST(Registry, CountersAndHistogramsAccumulateAcrossPoolThreads) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("c");
  obs::Histogram& hist = registry.histogram("h", {0.5});
  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  {
    exp::ThreadPool pool(8);
    exp::parallel_for_each(pool, kTasks, [&](std::size_t) {
      for (int i = 0; i < kPerTask; ++i) {
        counter.add();
        hist.observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kTasks) * kPerTask);
  const std::vector<std::uint64_t> buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kTasks) * kPerTask / 2);
  EXPECT_EQ(buckets[1], static_cast<std::uint64_t>(kTasks) * kPerTask / 2);
}

TEST(MetricsSnapshot, MergeAddsCountersAndBucketsOverwritesGauges) {
  obs::Registry a;
  a.counter("c").add(3);
  a.gauge("g").set(1.0);
  a.histogram("h", {1.0}).observe(0.5);

  obs::Registry b;
  b.counter("c").add(4);
  b.counter("only_b").add(1);
  b.gauge("g").set(2.0);
  b.histogram("h", {1.0}).observe(5.0);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].name, "c");
  EXPECT_EQ(merged.counters[0].value, 7u);
  EXPECT_EQ(merged.counters[1].name, "only_b");
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges[0].value, 2.0);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].count, 2u);
  EXPECT_EQ(merged.histograms[0].buckets[0], 1u);
  EXPECT_EQ(merged.histograms[0].buckets[1], 1u);
}

// --- recorder -> registry fanout (single source of truth) -------------------

TEST(TraceRecorder, FansEventsOutToAttachedRegistry) {
  obs::Registry registry;
  obs::TraceRecorder recorder(16);
  recorder.set_registry(&registry);
  recorder.peer_join(0, 0, false);
  recorder.peer_join(0, 1, true);
  recorder.connection_attempt(1, 0, 1, true);
  recorder.connection_attempt(1, 0, 1, false);
  recorder.unchoke(1, 0, 1);
  recorder.peer_complete(9, 0, 9.0);
  recorder.round_sample(1, 5, 2, 0.75, 0.5);

  const obs::MetricsSnapshot snap = registry.snapshot();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const obs::CounterSnapshot& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("swarm.peers_joined"), 2u);
  EXPECT_EQ(counter("swarm.connection_attempts"), 2u);
  EXPECT_EQ(counter("swarm.connection_attempt_failures"), 1u);
  EXPECT_EQ(counter("swarm.unchokes"), 1u);
  EXPECT_EQ(counter("swarm.completions"), 1u);
  EXPECT_EQ(counter("swarm.rounds"), 1u);
  auto gauge = [&](const std::string& name) -> double {
    for (const obs::GaugeSnapshot& g : snap.gauges) {
      if (g.name == name) return g.value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(gauge("swarm.population"), 7.0);  // leechers + seeds
  EXPECT_DOUBLE_EQ(gauge("swarm.entropy"), 0.75);
  bool found_hist = false;
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name == "swarm.download_rounds") {
      found_hist = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_DOUBLE_EQ(h.sum, 9.0);
    }
  }
  EXPECT_TRUE(found_hist);
}

// --- TaskScope / thread-local context ---------------------------------------

TEST(TaskScope, InstallsAndRestoresNested) {
  EXPECT_EQ(obs::current_trace(), nullptr);
  obs::TraceRecorder outer_rec(4);
  obs::Registry outer_reg;
  {
    const obs::TaskScope outer(&outer_rec, &outer_reg);
    EXPECT_EQ(obs::current_trace(), &outer_rec);
    EXPECT_EQ(obs::current_registry(), &outer_reg);
    {
      const obs::TaskScope inner(nullptr, nullptr);
      EXPECT_EQ(obs::current_trace(), nullptr);
      EXPECT_EQ(obs::current_registry(), nullptr);
    }
    EXPECT_EQ(obs::current_trace(), &outer_rec);
  }
  EXPECT_EQ(obs::current_trace(), nullptr);
}

TEST(TaskScope, IsPerThread) {
  obs::TraceRecorder recorder(4);
  const obs::TaskScope scope(&recorder, nullptr);
  obs::TraceRecorder* seen = &recorder;
  std::thread other([&]() { seen = obs::current_trace(); });
  other.join();
  EXPECT_EQ(seen, nullptr) << "scopes must not leak across threads";
}

// --- swarm integration: tracing must not perturb the simulation -------------

bt::SwarmConfig small_config(std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 24;
  config.max_connections = 3;
  config.peer_set_size = 10;
  config.arrival_rate = 1.5;
  config.seed = seed;
  config.shake.enabled = true;
  config.shake.completion_fraction = 0.8;
  // Strict tit-for-tat starves a cold swarm; warm it like the real
  // scenarios do so completions (and their trace events) actually occur.
  config.arrival_piece_probs.assign(config.num_pieces, 0.4);
  bt::InitialGroup warm;
  warm.count = 20;
  warm.piece_probs.assign(config.num_pieces, 0.5);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

TEST(SwarmTracing, DoesNotPerturbSimulation) {
  bt::Swarm plain(small_config(7));
  plain.run_rounds(80);

  obs::Registry registry;
  obs::TraceRecorder recorder;
  recorder.set_registry(&registry);
  std::optional<bt::Swarm> traced;
  {
    const obs::TaskScope scope(&recorder, &registry);
    traced.emplace(small_config(7));
  }
  traced->run_rounds(80);

  EXPECT_GT(recorder.total_recorded(), 0u) << "swarm picked up the recorder";
  ASSERT_EQ(plain.metrics().population().size(), traced->metrics().population().size());
  for (std::size_t i = 0; i < plain.metrics().population().size(); ++i) {
    EXPECT_EQ(plain.metrics().population()[i].value, traced->metrics().population()[i].value);
    EXPECT_EQ(plain.metrics().entropy()[i].value, traced->metrics().entropy()[i].value);
  }
  EXPECT_EQ(plain.population(), traced->population());
  EXPECT_EQ(plain.num_seeds(), traced->num_seeds());
}

TEST(SwarmTracing, SameSeedProducesIdenticalEventStreams) {
  auto run = [](std::uint64_t seed) {
    obs::TraceRecorder recorder;
    {
      const obs::TaskScope scope(&recorder, nullptr);
      bt::Swarm swarm(small_config(seed));
      swarm.run_rounds(60);
    }
    return recorder.events();
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(SwarmTracing, EmitsExpectedEventFamilies) {
  obs::TraceRecorder recorder;
  {
    const obs::TaskScope scope(&recorder, nullptr);
    bt::Swarm swarm(small_config(5));
    swarm.run_rounds(250);
  }
  std::size_t joins = 0, pieces = 0, completes = 0, phases = 0, samples = 0, shakes = 0;
  for (const obs::TraceEvent& event : recorder.events()) {
    switch (event.type) {
      case obs::EventType::kPeerJoin: ++joins; break;
      case obs::EventType::kPieceAcquired: ++pieces; break;
      case obs::EventType::kPeerComplete: ++completes; break;
      case obs::EventType::kPhaseTransition: ++phases; break;
      case obs::EventType::kRoundSample: ++samples; break;
      case obs::EventType::kPeerSetShake: ++shakes; break;
      default: break;
    }
  }
  EXPECT_GT(joins, 0u);
  EXPECT_GT(pieces, 0u);
  EXPECT_GT(completes, 0u);
  EXPECT_GT(phases, 0u);
  EXPECT_EQ(samples, 250u) << "one round sample per round";
  EXPECT_GT(shakes, 0u) << "shaking enabled at 0.8 completion";
}

// --- engine observer ---------------------------------------------------------

TEST(EngineObserver, CountsSchedulesAndExecutesAndHighWater) {
  struct Counting : des::EngineObserver {
    int scheduled = 0;
    int executed = 0;
    void on_schedule(double) override { ++scheduled; }
    void on_execute(double) override { ++executed; }
  };
  Counting counting;
  des::Engine engine;
  engine.set_observer(&counting);
  engine.schedule_at(1.0, []() {});
  engine.schedule_at(2.0, []() {});
  engine.schedule_in(3.0, []() {});
  EXPECT_EQ(counting.scheduled, 3);
  EXPECT_EQ(engine.queue_high_water(), 3u);
  engine.run();
  EXPECT_EQ(counting.executed, 3);
  EXPECT_EQ(engine.queue_high_water(), 3u) << "high-water persists after drain";
}

// --- thread-pool profiling ---------------------------------------------------

TEST(WallProfiler, RecordsSpansAndWorkerStats) {
  obs::WallProfiler profiler;
  {
    exp::ThreadPool pool(2);
    pool.set_profiler(&profiler);
    exp::parallel_for_each(pool, 6, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
  }
  const std::vector<obs::TaskSpan> spans = profiler.spans();
  ASSERT_EQ(spans.size(), 6u);
  for (const obs::TaskSpan& span : spans) {
    EXPECT_LT(span.worker, 2u);
    EXPECT_GE(span.duration_us, 1000);
    EXPECT_GE(span.queue_wait_us, 0);
  }
  const std::vector<obs::WorkerStats> stats = profiler.worker_stats();
  ASSERT_LE(stats.size(), 2u);
  std::uint64_t total_tasks = 0;
  for (const obs::WorkerStats& w : stats) {
    total_tasks += w.tasks;
    EXPECT_GT(w.busy_seconds, 0.0);
    EXPECT_GE(w.idle_seconds, 0.0);
  }
  EXPECT_EQ(total_tasks, 6u);
}

TEST(ScopedTimer, FeedsHistogramOnDestruction) {
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("t", {10.0});
  {
    const obs::ScopedTimer timer(&hist);
    EXPECT_GE(timer.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(hist.count(), 1u);
  { const obs::ScopedTimer noop(nullptr); }  // must not crash
  EXPECT_EQ(hist.count(), 1u);
}

// --- Chrome trace exporter: well-formedness ---------------------------------

// Minimal recursive-descent JSON validator — enough to prove the
// exporter's output parses (structure + string escapes + numbers).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, OutputIsWellFormedJsonWithPeerAndWorkerLanes) {
  obs::TraceCollector collector;
  obs::WallProfiler profiler;
  {
    obs::TraceRecorder recorder;
    {
      const obs::TaskScope scope(&recorder, nullptr);
      bt::Swarm swarm(small_config(3));
      swarm.run_rounds(40);
    }
    obs::TaskTrace trace;
    trace.task = 0;
    trace.label = "test \"quoted\" label\n";  // exercises escaping
    trace.events = recorder.events();
    collector.add(std::move(trace));
  }
  {
    exp::ThreadPool pool(2);
    pool.set_profiler(&profiler);
    exp::parallel_for_each(pool, 4, [](std::size_t) {});
  }

  std::ostringstream out;
  obs::write_chrome_trace(out, collector, &profiler);
  const std::string json = out.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "worker spans present";
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << "instant events present";
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << "counter tracks present";
  EXPECT_NE(json.find("piece_acquired"), std::string::npos);
}

TEST(ChromeTrace, EmptyCollectorStillValid) {
  obs::TraceCollector collector;
  std::ostringstream out;
  obs::write_chrome_trace(out, collector, nullptr);
  EXPECT_TRUE(JsonChecker(out.str()).valid()) << out.str();
}

// --- sweep runner integration: jobs-invariant traces ------------------------

exp::Scenario tiny_scenario() {
  exp::Scenario scenario;
  scenario.name = "obs_test";
  scenario.description = "tiny swarm for observability tests";
  scenario.make_points = [](const exp::SweepOptions&) {
    std::vector<exp::ParamPoint> points(3);
    for (int i = 0; i < 3; ++i) {
      points[static_cast<std::size_t>(i)].set("i", static_cast<long long>(i));
    }
    return points;
  };
  scenario.run = [](const exp::ParamPoint& point, std::uint64_t seed,
                    const exp::SweepOptions&) {
    bt::Swarm swarm(small_config(seed));
    swarm.run_rounds(30 + 5 * static_cast<int>(point.get_int("i")));
    exp::Record record;
    record.set("population", static_cast<long long>(swarm.population()));
    return record;
  };
  return scenario;
}

std::vector<obs::TaskTrace> run_traced_sweep(int jobs, obs::MetricsSnapshot* metrics_out) {
  exp::SweepOptions options;
  options.seed = 99;
  options.runs = 2;
  options.jobs = jobs;
  obs::Registry registry;
  obs::TraceCollector collector;
  options.observability.registry = &registry;
  options.observability.traces = &collector;
  const exp::SweepRunner runner(options);
  const exp::SweepSummary summary = runner.run(tiny_scenario());
  if (metrics_out != nullptr) {
    *metrics_out = summary.metrics;
  }
  return collector.sorted();
}

TEST(SweepTracing, SimTimeTracesAreIdenticalForAnyJobCount) {
  obs::MetricsSnapshot metrics1;
  obs::MetricsSnapshot metrics8;
  const std::vector<obs::TaskTrace> t1 = run_traced_sweep(1, &metrics1);
  const std::vector<obs::TaskTrace> t8 = run_traced_sweep(8, &metrics8);

  ASSERT_EQ(t1.size(), 6u);
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].task, t8[i].task);
    EXPECT_EQ(t1[i].label, t8[i].label);
    EXPECT_EQ(t1[i].dropped, t8[i].dropped);
    EXPECT_EQ(t1[i].events, t8[i].events) << "task " << i;
  }

  // Counters (sums of per-task work) must also be jobs-invariant.
  ASSERT_EQ(metrics1.counters.size(), metrics8.counters.size());
  for (std::size_t i = 0; i < metrics1.counters.size(); ++i) {
    EXPECT_EQ(metrics1.counters[i].name, metrics8.counters[i].name);
    EXPECT_EQ(metrics1.counters[i].value, metrics8.counters[i].value);
  }
}

TEST(SweepTracing, RecordsAreIdenticalWithAndWithoutTracing) {
  exp::SweepOptions options;
  options.seed = 123;
  options.runs = 2;
  options.jobs = 2;
  const exp::Scenario scenario = tiny_scenario();

  const exp::SweepSummary plain = exp::SweepRunner(options).run(scenario);

  obs::Registry registry;
  obs::TraceCollector collector;
  options.observability.registry = &registry;
  options.observability.traces = &collector;
  const exp::SweepSummary traced = exp::SweepRunner(options).run(scenario);

  ASSERT_EQ(plain.records.size(), traced.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    ASSERT_EQ(plain.records[i].fields.size(), traced.records[i].fields.size());
    for (std::size_t f = 0; f < plain.records[i].fields.size(); ++f) {
      EXPECT_EQ(plain.records[i].fields[f], traced.records[i].fields[f]);
    }
  }
  EXPECT_GT(collector.total_events(), 0u);
}

// --- metrics export ----------------------------------------------------------

TEST(MetricsExport, UniformSchemaAndBucketEncoding) {
  obs::Registry registry;
  registry.counter("c").add(5);
  registry.gauge("g").set(2.5);
  obs::Histogram& hist = registry.histogram("h", {10.0, 20.0});
  hist.observe(5.0);
  hist.observe(25.0);

  std::ostringstream out;
  exp::JsonlSink sink(out);
  exp::write_metrics_snapshot(registry.snapshot(), sink);
  const std::string text = out.str();

  std::istringstream lines(text);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_NE(text.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"buckets\":\"10:1|20:0|+inf:1\""), std::string::npos);

  // The same records must satisfy CsvSink's same-columns invariant.
  std::ostringstream csv_out;
  exp::CsvSink csv(csv_out);
  exp::write_metrics_snapshot(registry.snapshot(), csv);
  EXPECT_NE(csv_out.str().find("kind,name,value,count,sum,buckets"), std::string::npos);
}

TEST(ProgressReporter, AnnotationsPrintOnFinish) {
  std::ostringstream out;
  exp::ProgressReporter progress(1, &out, "obs");
  progress.task_done();
  progress.annotate("extra line");
  progress.finish();
  EXPECT_NE(out.str().find("[obs] extra line"), std::string::npos);
}

// --- stream stats: Welford moments + P^2 quantiles --------------------------

TEST(StreamStats, WelfordMomentsMatchClosedForm) {
  obs::StreamStats stats;
  const std::vector<double> sample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : sample) {
    stats.observe(v);
  }
  EXPECT_EQ(stats.count(), sample.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sum of squared deviations is 32 over n-1 = 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  const obs::StreamStatsSnapshot snap = stats.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 9.0);
  EXPECT_DOUBLE_EQ(snap.sum, 40.0);
}

TEST(StreamStats, QuantilesExactBelowFiveObservations) {
  obs::StreamStats stats({0.5});
  stats.observe(30.0);
  stats.observe(10.0);
  // Below five observations the probe stores the sample and interpolates
  // on the sorted prefix: median of {10, 30} is their midpoint.
  EXPECT_DOUBLE_EQ(stats.quantile(0.5), 20.0);
  stats.observe(20.0);
  EXPECT_DOUBLE_EQ(stats.quantile(0.5), 20.0);  // exact median of {10, 20, 30}
}

TEST(StreamStats, P2TracksUniformRampQuantiles) {
  // A deterministic pseudo-shuffled ramp over [0, 1000): the P^2 estimate
  // must land near the exact quantiles without storing the sample.
  obs::StreamStats stats({0.5, 0.9});
  constexpr int kN = 1000;
  std::uint64_t lcg = 12345;
  for (int i = 0; i < kN; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    stats.observe(static_cast<double>(lcg % kN));
  }
  EXPECT_EQ(stats.count(), static_cast<std::uint64_t>(kN));
  EXPECT_NEAR(stats.quantile(0.5), 500.0, 50.0);
  EXPECT_NEAR(stats.quantile(0.9), 900.0, 50.0);
  EXPECT_NEAR(stats.mean(), 500.0, 50.0);
}

TEST(StreamStats, SnapshotMergeMatchesSingleStreamMoments) {
  obs::StreamStats left({0.5});
  obs::StreamStats right({0.5});
  obs::StreamStats all({0.5});
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>((i * 37) % 100);
    (i < 50 ? left : right).observe(v);
    all.observe(v);
  }
  obs::StreamStatsSnapshot merged = left.snapshot();
  merged.merge(right.snapshot());
  const obs::StreamStatsSnapshot expect = all.snapshot();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_NEAR(merged.mean, expect.mean, 1e-9);
  EXPECT_NEAR(merged.stddev, expect.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(merged.min, expect.min);
  EXPECT_DOUBLE_EQ(merged.max, expect.max);
}

TEST(Registry, StatsRejectsMismatchedProbesAndSnapshots) {
  obs::Registry registry;
  obs::StreamStats& stats = registry.stats("s", {0.5, 0.9});
  EXPECT_NO_THROW(registry.stats("s", {0.9, 0.5}));  // order-insensitive
  EXPECT_THROW(registry.stats("s", {0.25}), std::invalid_argument);
  stats.observe(1.0);
  stats.observe(3.0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.stats.size(), 1u);
  EXPECT_EQ(snap.stats[0].name, "s");
  EXPECT_EQ(snap.stats[0].count, 2u);
  EXPECT_DOUBLE_EQ(snap.stats[0].mean, 2.0);
}

// --- histogram quantiles: bucket-bound edge behavior ------------------------

TEST(HistogramSnapshot, QuantileInterpolatesWithinBucket) {
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) {
    hist.observe(15.0);  // all ten land in (10, 20]
  }
  const obs::HistogramSnapshot snap = registry.snapshot().histograms.front();
  // Mass is uniform within the bucket: the median interpolates to the
  // bucket midpoint and the min/max quantiles to its edges.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 20.0);
}

TEST(HistogramSnapshot, ObservationsOnBucketBoundStayInLowerBucket) {
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h", {10.0, 20.0});
  for (int i = 0; i < 4; ++i) {
    hist.observe(10.0);  // == edge -> first bucket (inclusive upper edge)
  }
  const obs::HistogramSnapshot snap = registry.snapshot().histograms.front();
  ASSERT_EQ(snap.buckets[0], 4u);
  // Every quantile of a single-bucket distribution stays at or below the
  // bound the observations sat on.
  EXPECT_LE(snap.quantile(0.5), 10.0);
  EXPECT_LE(snap.quantile(1.0), 10.0);
  EXPECT_GE(snap.quantile(0.0), 0.0);
}

TEST(HistogramSnapshot, OverflowBucketClampsToLastFiniteEdge) {
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("h", {10.0, 20.0});
  hist.observe(5.0);
  hist.observe(1000.0);  // overflow
  const obs::HistogramSnapshot snap = registry.snapshot().histograms.front();
  // The open-ended bucket has no upper edge to interpolate toward; the
  // estimate clamps to the last finite bound instead of inventing one.
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 20.0);
  EXPECT_LE(snap.quantile(0.25), 10.0);
}

}  // namespace
