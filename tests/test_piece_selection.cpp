#include "bt/piece_selection.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mpbt::bt {
namespace {

class PieceSelectionTest : public ::testing::Test {
 protected:
  numeric::Rng rng_{17};
};

TEST_F(PieceSelectionTest, RandomReturnsNulloptWhenNothingToOffer) {
  Bitfield down(10);
  Bitfield up(10);
  EXPECT_FALSE(select_random(down, up, rng_).has_value());
  up.set(3);
  down.set(3);
  EXPECT_FALSE(select_random(down, up, rng_).has_value());
}

TEST_F(PieceSelectionTest, RandomPicksOnlyValidPieces) {
  Bitfield down(10);
  Bitfield up(10);
  up.set(2);
  up.set(7);
  down.set(2);
  for (int i = 0; i < 50; ++i) {
    const auto choice = select_random(down, up, rng_);
    ASSERT_TRUE(choice.has_value());
    EXPECT_EQ(*choice, 7u);
  }
}

TEST_F(PieceSelectionTest, RandomIsRoughlyUniform) {
  Bitfield down(4);
  Bitfield up(4);
  up.set(0);
  up.set(1);
  up.set(2);
  std::map<PieceIndex, int> hits;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++hits[*select_random(down, up, rng_)];
  }
  for (PieceIndex p = 0; p < 3; ++p) {
    EXPECT_NEAR(hits[p] / static_cast<double>(n), 1.0 / 3.0, 0.02);
  }
}

TEST_F(PieceSelectionTest, RarestFirstPicksLowestAvailability) {
  Bitfield down(5);
  Bitfield up(5);
  up.set(0);
  up.set(1);
  up.set(2);
  const std::vector<std::uint32_t> availability{10, 2, 30, 1, 1};
  // Piece 3 / 4 are rarest overall but the uploader only has 0, 1, 2:
  // rarest candidate is piece 1.
  for (int i = 0; i < 20; ++i) {
    const auto choice = select_rarest_first(down, up, availability, rng_);
    ASSERT_TRUE(choice.has_value());
    EXPECT_EQ(*choice, 1u);
  }
}

TEST_F(PieceSelectionTest, RarestFirstBreaksTiesRandomly) {
  Bitfield down(3);
  Bitfield up(3);
  up.set(0);
  up.set(1);
  up.set(2);
  const std::vector<std::uint32_t> availability{4, 4, 9};
  std::map<PieceIndex, int> hits;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++hits[*select_rarest_first(down, up, availability, rng_)];
  }
  EXPECT_EQ(hits.count(2), 0u);
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.5, 0.02);
}

TEST_F(PieceSelectionTest, RarestFirstEmptyAvailabilityFallsBackToRandom) {
  Bitfield down(4);
  Bitfield up(4);
  up.set(1);
  up.set(3);
  const auto choice = select_rarest_first(down, up, {}, rng_);
  ASSERT_TRUE(choice.has_value());
  EXPECT_TRUE(*choice == 1u || *choice == 3u);
}

TEST_F(PieceSelectionTest, RarestFirstValidatesAvailabilitySize) {
  Bitfield down(4);
  Bitfield up(4);
  up.set(1);
  const std::vector<std::uint32_t> wrong_size{1, 2};
  EXPECT_THROW(select_rarest_first(down, up, wrong_size, rng_), std::invalid_argument);
}

TEST_F(PieceSelectionTest, StrategyDispatch) {
  Bitfield down(6);
  Bitfield up(6);
  up.set(0);
  up.set(5);
  const std::vector<std::uint32_t> availability{9, 9, 9, 9, 9, 1};

  // RarestFirst must pick piece 5.
  EXPECT_EQ(*select_piece(PieceSelection::RarestFirst, down, up, availability, rng_), 5u);

  // RandomFirstThenRarest: empty downloader -> random among {0, 5}.
  bool saw0 = false;
  bool saw5 = false;
  for (int i = 0; i < 200; ++i) {
    const auto c =
        select_piece(PieceSelection::RandomFirstThenRarest, down, up, availability, rng_);
    saw0 |= (*c == 0u);
    saw5 |= (*c == 5u);
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw5);

  // Once the downloader holds a piece, it switches to rarest-first.
  down.set(1);
  EXPECT_EQ(*select_piece(PieceSelection::RandomFirstThenRarest, down, up, availability, rng_),
            5u);
}

TEST_F(PieceSelectionTest, NothingAvailableAcrossStrategies) {
  Bitfield down(4);
  Bitfield up(4);
  down.set(0);
  for (auto strategy : {PieceSelection::Random, PieceSelection::RarestFirst,
                        PieceSelection::RandomFirstThenRarest}) {
    EXPECT_FALSE(
        select_piece(strategy, down, up, std::vector<std::uint32_t>(4, 1), rng_).has_value());
  }
}

}  // namespace
}  // namespace mpbt::bt
