// Heterogeneous upload bandwidth (homogeneity assumption relaxed).
#include <gtest/gtest.h>

#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace mpbt::bt {
namespace {

SwarmConfig hetero_config(std::uint64_t seed = 33) {
  SwarmConfig config;
  config.num_pieces = 80;
  config.max_connections = 5;
  config.peer_set_size = 25;
  config.arrival_rate = 2.5;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  config.seed = seed;
  config.arrival_piece_probs.assign(config.num_pieces, 0.2);
  config.bandwidth_classes = {{0.5, 1}, {0.5, 5}};
  return config;
}

TEST(Bandwidth, ConfigValidation) {
  SwarmConfig config;
  config.bandwidth_classes = {{0.5, 0}};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.bandwidth_classes = {{-0.5, 1}};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.bandwidth_classes = {{0.0, 1}, {0.0, 2}};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.bandwidth_classes = {{0.7, 1}, {0.3, 4}};
  EXPECT_NO_THROW(config.validate());
}

TEST(Bandwidth, ClassesAssignedByFraction) {
  Swarm swarm(hetero_config());
  swarm.run_rounds(30);
  std::size_t slow = 0;
  std::size_t fast = 0;
  for (PeerId id : swarm.live_peers()) {
    const Peer& p = swarm.peer(id);
    if (p.is_seed) {
      continue;
    }
    if (p.bandwidth_class == 0) {
      ++slow;
      EXPECT_EQ(p.upload_per_round, 1u);
    } else {
      ++fast;
      EXPECT_EQ(p.upload_per_round, 5u);
    }
  }
  EXPECT_GT(slow, 0u);
  EXPECT_GT(fast, 0u);
}

TEST(Bandwidth, UploadCapEnforcedPerRound) {
  // A slow peer (1 upload/round) can acquire at most 1 piece per round via
  // trading; seed service can add more, so disable seeds-serve-all here.
  SwarmConfig config = hetero_config();
  config.seeds_serve_all = false;
  Swarm swarm(std::move(config));
  for (int r = 0; r < 50; ++r) {
    swarm.step();
    for (PeerId id : swarm.live_peers()) {
      const Peer& p = swarm.peer(id);
      if (p.is_seed || p.upload_per_round != 1) {
        continue;
      }
      if (p.joined == static_cast<Round>(swarm.round() - 1)) {
        continue;  // pieces carried at arrival are not uploads
      }
      // Count pieces acquired this round by trading: bounded by budget
      // plus (possibly) one bootstrap piece.
      std::size_t this_round = 0;
      for (auto it = p.acquired_rounds.rbegin();
           it != p.acquired_rounds.rend() &&
           *it == static_cast<Round>(swarm.round() - 1);
           ++it) {
        ++this_round;
      }
      ASSERT_LE(this_round, 2u) << "peer " << id;
    }
  }
}

TEST(Bandwidth, InvariantsHold) {
  Swarm swarm(hetero_config());
  for (int r = 0; r < 60; ++r) {
    swarm.step();
    ASSERT_NO_THROW(swarm.check_invariants());
  }
}

TEST(Bandwidth, TitForTatCouplesDownloadToUpload) {
  // Fast uploaders must complete significantly faster than slow ones.
  std::vector<double> slow_times;
  std::vector<double> fast_times;
  for (std::uint64_t seed : {33ULL, 66ULL, 99ULL}) {
    Swarm swarm(hetero_config(seed));
    swarm.run_rounds(200);
    for (double t : swarm.metrics().download_times_for_class(0)) {
      slow_times.push_back(t);
    }
    for (double t : swarm.metrics().download_times_for_class(1)) {
      fast_times.push_back(t);
    }
  }
  ASSERT_GT(slow_times.size(), 20u);
  ASSERT_GT(fast_times.size(), 20u);
  const double slow_mean = numeric::summarize(slow_times).mean;
  const double fast_mean = numeric::summarize(fast_times).mean;
  EXPECT_GT(slow_mean, fast_mean * 1.2);
}

TEST(Bandwidth, HomogeneousDefaultUnconstrained) {
  SwarmConfig config = hetero_config();
  config.bandwidth_classes.clear();
  Swarm swarm(std::move(config));
  swarm.run_rounds(20);
  for (PeerId id : swarm.live_peers()) {
    EXPECT_EQ(swarm.peer(id).upload_per_round, UINT32_MAX);
  }
}

}  // namespace
}  // namespace mpbt::bt
