#!/usr/bin/env bash
# Regenerates every paper figure and ablation, writing text output and CSVs
# under out/ (created next to the repository root).
#
# Usage: scripts/run_all_figures.sh [build-dir] [out-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-out}"
mkdir -p "$OUT_DIR"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  case "$name" in
    *.cmake|*.a|CMakeFiles|CTestTestfile.cmake|cmake_install.cmake) continue ;;
  esac
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  if [ "$name" = perf_microbench ]; then
    echo "== $name"
    "$bench" --benchmark_min_time=0.01s > "$OUT_DIR/$name.txt" 2>&1 || true
    continue
  fi
  echo "== $name"
  "$bench" --csv="$OUT_DIR/$name.csv" > "$OUT_DIR/$name.txt"
done

echo
echo "outputs in $OUT_DIR/ — text tables (*.txt) and CSV series (*.csv)."
echo "plot with scripts/plot_figures.gp (gnuplot) or any CSV tool."
