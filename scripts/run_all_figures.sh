#!/usr/bin/env bash
# Regenerates every paper figure and ablation, writing text output and CSVs
# under out/ (created next to the repository root). Figure binaries are
# independent, so they run CONCURRENTLY, bounded by --jobs (default: all
# cores); the first failure kills the remaining jobs and names the binary.
#
# Usage: scripts/run_all_figures.sh [build-dir] [out-dir] [--quick] [--jobs=N]
#                                   [--log-level=LEVEL]
#                                   [--bench-json=PATH] [--bench-label=LABEL]
#
# Each binary's stdout table goes to $OUT_DIR/<name>.txt and its stderr to
# $OUT_DIR/<name>.err (jobs run concurrently, so stderr cannot share the
# terminal without interleaving). --log-level is forwarded to every figure
# binary (perf_microbench excepted — google-benchmark owns its flags). A
# per-binary wall-time summary table prints at the end.
#
# --bench-json=PATH appends this run's perf_microbench results and the
# wall-time table as one labeled entry of an mpbt-bench-v1 trajectory
# file (e.g. BENCH_0003.json) via `mpbt_report --append-bench`, so the
# repo's performance history accumulates run over run. --bench-label
# names the entry (default: the build dir's CMAKE_BUILD_TYPE or "run").
set -euo pipefail

BUILD_DIR="build"
OUT_DIR="out"
QUICK=0
JOBS="$(nproc 2>/dev/null || echo 2)"
LOG_LEVEL=""
BENCH_JSON=""
BENCH_LABEL=""

positional=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    --log-level=*) LOG_LEVEL="${arg#--log-level=}" ;;
    --bench-json=*) BENCH_JSON="${arg#--bench-json=}" ;;
    --bench-label=*) BENCH_LABEL="${arg#--bench-label=}" ;;
    -*)
      echo "usage: $0 [build-dir] [out-dir] [--quick] [--jobs=N] [--log-level=LEVEL]" >&2
      echo "          [--bench-json=PATH] [--bench-label=LABEL]" >&2
      exit 2
      ;;
    *) positional+=("$arg") ;;
  esac
done
[ "${#positional[@]}" -ge 1 ] && BUILD_DIR="${positional[0]}"
[ "${#positional[@]}" -ge 2 ] && OUT_DIR="${positional[1]}"
case "$JOBS" in
  '' | *[!0-9]* | 0)
    echo "error: --jobs must be a positive integer" >&2
    exit 2
    ;;
esac

mkdir -p "$OUT_DIR"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

STATUS_DIR="$(mktemp -d)"
trap 'rm -rf "$STATUS_DIR"' EXIT

# Runs one binary, recording its exit status under $STATUS_DIR/<name> and
# its wall-clock seconds under $STATUS_DIR/<name>.time so the parent can
# attribute failures (wait -n reports status, not which job) and print a
# timing summary.
run_bench() {
  local name="$1" bench="$2" rc=0
  local start_s
  start_s="$(date +%s.%N)"
  if [ "$name" = perf_microbench ]; then
    # Bare-double form: accepted by every google-benchmark version (the
    # "0.01s" suffix form only parses on >= 1.8). The JSON side-output
    # feeds `mpbt_report --append-bench` when --bench-json is given.
    "$bench" --benchmark_min_time=0.01 \
      --benchmark_out="$OUT_DIR/$name.json" --benchmark_out_format=json \
      > "$OUT_DIR/$name.txt" 2> "$OUT_DIR/$name.err" || rc=$?
  elif [ "$name" = bench_swarm_step ] || [ "$name" = bench_ecosystem_step ]; then
    # Self-timed step throughput (swarm core / ecosystem); the --json
    # side-output uses the google-benchmark schema so both join the
    # same bench trajectory.
    local step_args=(--json="$OUT_DIR/$name.json")
    [ "$QUICK" = 1 ] && step_args+=(--quick)
    "$bench" "${step_args[@]}" > "$OUT_DIR/$name.txt" 2> "$OUT_DIR/$name.err" || rc=$?
  else
    local args=(--csv="$OUT_DIR/$name.csv")
    [ "$QUICK" = 1 ] && args+=(--quick)
    [ -n "$LOG_LEVEL" ] && args+=(--log-level="$LOG_LEVEL")
    "$bench" "${args[@]}" > "$OUT_DIR/$name.txt" 2> "$OUT_DIR/$name.err" || rc=$?
  fi
  echo "$rc" > "$STATUS_DIR/$name"
  awk -v a="$start_s" -v b="$(date +%s.%N)" 'BEGIN { printf "%.2f\n", b - a }' \
    > "$STATUS_DIR/$name.time"
  return "$rc"
}

# Fails fast: if any recorded status is nonzero, kill the remaining jobs
# and exit naming the failing binary.
check_failures() {
  local status_file rc name
  for status_file in "$STATUS_DIR"/*; do
    [ -f "$status_file" ] || continue
    case "$status_file" in *.time) continue ;; esac
    rc="$(cat "$status_file")"
    if [ "$rc" != 0 ]; then
      name="$(basename "$status_file")"
      echo "error: $name failed (exit $rc) — see $OUT_DIR/$name.err" >&2
      jobs -pr | xargs -r kill 2>/dev/null || true
      wait 2>/dev/null || true
      exit 1
    fi
  done
}

active=0
for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  case "$name" in
    *.cmake|*.a|CMakeFiles|CTestTestfile.cmake|cmake_install.cmake) continue ;;
  esac
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  if [ "$active" -ge "$JOBS" ]; then
    wait -n || true
    active=$((active - 1))
    check_failures
  fi
  echo "== $name"
  run_bench "$name" "$bench" &
  active=$((active + 1))
done

while [ "$active" -gt 0 ]; do
  wait -n || true
  active=$((active - 1))
  check_failures
done

echo
echo "wall time per binary:"
{
  printf '  %-28s %10s\n' "binary" "seconds"
  for time_file in "$STATUS_DIR"/*.time; do
    [ -f "$time_file" ] || continue
    name="$(basename "$time_file" .time)"
    printf '  %-28s %10s\n' "$name" "$(cat "$time_file")"
  done | sort -k2 -rn
} | tee "$OUT_DIR/wall_times.txt"

if [ -n "$BENCH_JSON" ]; then
  REPORT_BIN="$BUILD_DIR/examples/mpbt_report"
  if [ ! -x "$REPORT_BIN" ]; then
    echo "error: $REPORT_BIN not found — build examples first" >&2
    exit 1
  fi
  if [ -z "$BENCH_LABEL" ]; then
    BENCH_LABEL="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null)"
    BENCH_LABEL="${BENCH_LABEL:-run}"
  fi
  BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null)"
  append_args=(--append-bench --bench="$BENCH_JSON" --bench-label="$BENCH_LABEL"
               --build-type="${BUILD_TYPE:-unknown}"
               --bench-source="scripts/run_all_figures.sh$([ "$QUICK" = 1 ] && echo ' --quick')"
               --wall-times="$OUT_DIR/wall_times.txt")
  GB_FILES=""
  for gb_json in "$OUT_DIR/perf_microbench.json" "$OUT_DIR/bench_swarm_step.json" \
                 "$OUT_DIR/bench_ecosystem_step.json"; do
    [ -s "$gb_json" ] && GB_FILES="${GB_FILES:+$GB_FILES,}$gb_json"
  done
  [ -n "$GB_FILES" ] && append_args+=(--google-benchmark="$GB_FILES")
  "$REPORT_BIN" "${append_args[@]}"
fi

echo
echo "outputs in $OUT_DIR/ — text tables (*.txt) and CSV series (*.csv)."
echo "plot with scripts/plot_figures.gp (gnuplot) or any CSV tool."
