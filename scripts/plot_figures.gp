# gnuplot script for the main paper figures, consuming the CSVs written by
# scripts/run_all_figures.sh (default out/ directory).
#
#   gnuplot -e "outdir='out'" scripts/plot_figures.gp
#
# Produces PNGs next to the CSVs.
if (!exists("outdir")) outdir = "out"
set datafile separator ","
set terminal pngcairo size 900,600
set key outside
set grid

# Figure 1(a): potential/neighbor-set ratio vs pieces downloaded.
set output outdir."/fig1a_potential_set.png"
set title "Fig. 1(a) — potential set / neighbor set vs pieces downloaded"
set xlabel "pieces downloaded"
set ylabel "potential / neighbor set ratio"
set yrange [0:1]
plot outdir."/fig1a_potential_set.csv" skip 1 using 1:2 with linespoints title "PSS=5", \
     "" skip 1 using 1:3 with linespoints title "PSS=10", \
     "" skip 1 using 1:4 with linespoints title "PSS=25", \
     "" skip 1 using 1:5 with linespoints title "PSS=40"

# Figure 1(b): evolution timeline, sim vs model.
set output outdir."/fig1b_evolution_timeline.png"
set title "Fig. 1(b) — evolution timeline (rounds to reach b pieces)"
set xlabel "pieces"
set ylabel "rounds"
set yrange [*:*]
plot outdir."/fig1b_evolution_timeline.csv" skip 1 using 1:2 with linespoints title "sim PSS=5", \
     "" skip 1 using 1:3 with lines title "model PSS=5", \
     "" skip 1 using 1:4 with linespoints title "sim PSS=50", \
     "" skip 1 using 1:5 with lines title "model PSS=50"

# Figure 3/4(a): efficiency vs k.
set output outdir."/fig3a_efficiency_vs_k.png"
set title "Fig. 3/4(a) — efficiency vs maximum connections k"
set xlabel "k"
set ylabel "efficiency"
set yrange [0:1]
plot outdir."/fig3a_efficiency_vs_k.csv" skip 1 using 1:2 with linespoints title "simulation", \
     "" skip 1 using 1:3 with linespoints title "model"

# Figure 3/4(b): population over time.
set output outdir."/fig3b_population_stability.png"
set title "Fig. 3/4(b) — peers in the system (skewed start)"
set xlabel "round"
set ylabel "# peers"
plot outdir."/fig3b_population_stability.csv" skip 1 using 1:2 with lines title "B=3", \
     "" skip 1 using 1:3 with lines title "B=10"

# Figure 3/4(c): entropy over time.
set output outdir."/fig3c_entropy_evolution.png"
set title "Fig. 3/4(c) — entropy (skewed start)"
set xlabel "round"
set ylabel "entropy"
set yrange [0:1]
plot outdir."/fig3c_entropy_evolution.csv" skip 1 using 1:2 with lines title "B=3", \
     "" skip 1 using 1:3 with lines title "B=10"

# Figure 3/4(d): last-piece TTD, normal vs shaking.
set output outdir."/fig3d_peer_set_shaking.png"
set title "Fig. 3/4(d) — time to download the last blocks"
set xlabel "block"
set ylabel "TTD (rounds)"
set yrange [*:*]
plot outdir."/fig3d_peer_set_shaking.csv" skip 1 using 1:2 with linespoints title "normal", \
     "" skip 1 using 1:3 with linespoints title "shake"
