#!/usr/bin/env bash
# Formats (default) or verifies (--check) the forward-formatted file set
# against the committed .clang-format. The legacy tree predates the
# style file, so only the subsystems listed here have opted in; add new
# directories as they are introduced rather than reformatting history.
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=(
  src/check/*.hpp
  src/check/*.cpp
  src/bt/fault.hpp
  src/bt/fault.cpp
  examples/mpbt_fuzz.cpp
  tests/test_check.cpp
)

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not found in PATH" >&2
  exit 1
fi

if [[ "${1:-}" == "--check" ]]; then
  clang-format --dry-run -Werror "${FILES[@]}"
  echo "format.sh: ${#FILES[@]} file globs clean"
else
  clang-format -i "${FILES[@]}"
fi
