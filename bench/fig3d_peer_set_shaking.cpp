// Figure 3/4(d): effect of shaking the peer set on the download time of
// the last pieces (Section 7.1).
//
// Runs the same small-peer-set swarm with and without the shaking
// modification (at 90% completion a peer discards its whole neighbor set
// and refetches a random one from the tracker) and reports the average
// time-to-download of pieces 190..200 of a 200-piece file. Paper result:
// shaking significantly reduces the last-piece download times.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "stability/entropy.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig swarm_config(bool shake, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = 200;
  config.max_connections = 7;
  config.peer_set_size = 6;  // small set: last-piece problem visible
  config.arrival_rate = 0.8;
  config.initial_seeds = 1;
  config.seed_capacity = 2;
  config.seed = seed;
  config.shake.enabled = shake;
  config.shake.completion_fraction = 0.9;
  (void)quick;
  // Age-correlated content: tail pieces are genuinely rare, so a peer at
  // 90% completion often finds nothing in its 6-neighbor set — exactly the
  // last-piece regime shaking is designed to escape.
  const std::vector<double> ramp = stability::ramp_piece_probs(config.num_pieces, 0.75, 0.02);
  bt::InitialGroup warm;
  warm.count = 80;
  warm.piece_probs = ramp;
  config.initial_groups.push_back(std::move(warm));
  config.arrival_piece_probs = ramp;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "fig3d_peer_set_shaking",
      "Fig. 3/4(d): last-piece TTD with and without peer-set shaking");
  if (!options) {
    return 0;
  }
  bench::print_banner("Figure 3/4(d)", "effect of shaking the peer set on last-piece TTD");

  const bt::Round rounds = options->quick ? 250 : 400;
  const std::uint32_t first_block = 190;
  const std::uint32_t last_block = 200;

  std::vector<double> normal_sum(last_block + 1, 0.0);
  std::vector<int> normal_count(last_block + 1, 0);
  std::vector<double> shake_sum(last_block + 1, 0.0);
  std::vector<int> shake_count(last_block + 1, 0);

  for (int run = 0; run < options->runs; ++run) {
    const std::uint64_t seed = options->seed + static_cast<std::uint64_t>(run) * 211;
    bt::Swarm normal(swarm_config(false, seed, options->quick));
    normal.run_rounds(rounds);
    bt::Swarm shaken(swarm_config(true, seed, options->quick));
    shaken.run_rounds(rounds);
    for (std::uint32_t ordinal = first_block; ordinal <= last_block; ++ordinal) {
      const double n = normal.metrics().ttd(ordinal);
      if (n >= 0.0) {
        normal_sum[ordinal] += n;
        ++normal_count[ordinal];
      }
      const double s = shaken.metrics().ttd(ordinal);
      if (s >= 0.0) {
        shake_sum[ordinal] += s;
        ++shake_count[ordinal];
      }
    }
  }

  util::Table table({"block", "TTD normal", "TTD shake"});
  table.set_precision(2);
  double normal_total = 0.0;
  double shake_total = 0.0;
  for (std::uint32_t ordinal = first_block; ordinal <= last_block; ++ordinal) {
    const double n = normal_count[ordinal] == 0 ? -1.0 : normal_sum[ordinal] / normal_count[ordinal];
    const double s = shake_count[ordinal] == 0 ? -1.0 : shake_sum[ordinal] / shake_count[ordinal];
    if (n >= 0.0) {
      normal_total += n;
    }
    if (s >= 0.0) {
      shake_total += s;
    }
    table.add_row({static_cast<long long>(ordinal), n, s});
  }
  bench::emit_table(table, *options);
  std::cout << "\ntotal TTD over blocks " << first_block << ".." << last_block
            << ": normal " << normal_total << ", shake " << shake_total << " ("
            << (normal_total > 0 ? 100.0 * (normal_total - shake_total) / normal_total : 0.0)
            << "% reduction)\n";
  return 0;
}
