// Figure 3/4(c): effect of B on entropy over time.
//
// Same experiment as Figure 3/4(b), reported as the swarm entropy
// E = min_j d_j / max_j d_j. Paper result: from a skewed start, entropy
// collapses toward 0 for B = 3 and is pushed back toward 1 for B = 10.
#include <iostream>

#include "bench_common.hpp"
#include "stability/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  const auto options = bench::parse_bench_options(
      argc, argv, "fig3c_entropy_evolution",
      "Fig. 3/4(c): entropy over time for B = 3 vs B = 10");
  if (!options) {
    return 0;
  }
  bench::print_banner("Figure 3/4(c)", "effect of B on entropy");

  stability::StabilityConfig base;
  base.rounds = options->quick ? 120 : 250;
  base.arrival_rate = 4.0;
  base.initial_peers = options->quick ? 150 : 300;
  base.seed = options->seed;

  stability::StabilityConfig small_b = base;
  small_b.num_pieces = 3;
  stability::StabilityConfig large_b = base;
  large_b.num_pieces = 10;

  const stability::StabilityResult r3 = run_stability_experiment(small_b);
  const stability::StabilityResult r10 = run_stability_experiment(large_b);

  util::Table table({"round", "entropy (B=3)", "entropy (B=10)"});
  table.set_precision(3);
  const std::uint32_t step = base.rounds / 25 == 0 ? 1 : base.rounds / 25;
  for (std::uint32_t r = 0; r < base.rounds; r += step) {
    table.add_row({static_cast<long long>(r), r3.entropy.value_at(r),
                   r10.entropy.value_at(r)});
  }
  bench::emit_table(table, *options);

  std::cout << "\nB=3:  tail-mean entropy " << r3.mean_entropy_tail << '\n';
  std::cout << "B=10: tail-mean entropy " << r10.mean_entropy_tail << '\n';
  return 0;
}
