// Ablation T1: tracker peer-selection policies (Section 4.3).
//
// The paper suggests two ways to shorten the bootstrap phase: "the tracker
// can bias new peer arrivals into the neighborhood of the peers which are
// trapped in the bootstrap phase", and (following ref. [8]) clustering
// peers by download status. This bench runs a bootstrap-prone swarm under
// the three tracker policies and compares bootstrap exposure (starving
// peer-rounds), first-piece trading delay, and download times.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig policy_config(bt::TrackerPolicy policy, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 100 : 200;
  config.max_connections = 7;
  // Small neighbor sets in a clone-heavy swarm: arrivals often find no one
  // to trade their first piece with.
  config.peer_set_size = 6;
  config.arrival_rate = 1.5;
  config.initial_seeds = 1;
  config.seed_capacity = 2;
  config.optimistic_unchoke_prob = 1.0;
  config.tracker_policy = policy;
  config.seed = seed;
  bt::InitialGroup clones;
  clones.count = 70;
  clones.piece_probs.assign(config.num_pieces, 0.0);
  for (std::uint32_t j = 0; j < config.num_pieces / 2; ++j) {
    clones.piece_probs[j] = 0.95;
  }
  config.initial_groups.push_back(std::move(clones));
  config.arrival_piece_probs.assign(config.num_pieces, 0.02);
  return config;
}

const char* policy_name(bt::TrackerPolicy policy) {
  switch (policy) {
    case bt::TrackerPolicy::UniformRandom:
      return "uniform-random";
    case bt::TrackerPolicy::BootstrapBias:
      return "bootstrap-bias";
    case bt::TrackerPolicy::StatusClustered:
      return "status-clustered";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "tracker_policies",
      "Section 4.3 ablation: tracker peer-selection policies vs bootstrap exposure");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation T1", "tracker policies and the bootstrap phase");

  const bt::Round rounds = options->quick ? 200 : 400;

  util::Table table({"policy", "starving peer-rounds", "2nd-piece delay", "completed",
                     "mean download", "p95 download"});
  table.set_precision(2);
  for (bt::TrackerPolicy policy :
       {bt::TrackerPolicy::UniformRandom, bt::TrackerPolicy::BootstrapBias,
        bt::TrackerPolicy::StatusClustered}) {
    double starving = 0.0;
    double second_piece_delay = 0.0;
    int delay_samples = 0;
    std::vector<double> downloads;
    for (int run = 0; run < options->runs; ++run) {
      bt::Swarm swarm(
          policy_config(policy, options->seed + static_cast<std::uint64_t>(run) * 83,
                        options->quick));
      swarm.run_rounds(rounds);
      starving += static_cast<double>(swarm.metrics().failed_encounters()) / options->runs;
      // TTD of the second piece = how long the first piece sat untradable.
      const double d = swarm.metrics().ttd(2);
      if (d >= 0.0) {
        second_piece_delay += d;
        ++delay_samples;
      }
      for (double t : swarm.metrics().download_times()) {
        downloads.push_back(t);
      }
    }
    const numeric::Summary s = numeric::summarize(downloads);
    table.add_row({std::string(policy_name(policy)), starving,
                   delay_samples == 0 ? -1.0 : second_piece_delay / delay_samples,
                   static_cast<long long>(s.count), s.mean, s.p95});
  }
  bench::emit_table(table, *options);
  return 0;
}
