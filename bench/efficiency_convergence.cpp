// Ablation M2: convergence of the balance-equation iteration (Section 5)
// and the shape of the equilibrium class distribution.
//
// Prints, per k and p_r, the iterations to convergence, the residual, the
// resulting efficiency, and the equilibrium distribution's mass at the
// extreme classes. Demonstrates that the iteration converges quickly and
// that the fixed point is insensitive to the starting distribution.
#include <iostream>

#include "bench_common.hpp"
#include "efficiency/balance.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  const auto options = bench::parse_bench_options(
      argc, argv, "efficiency_convergence",
      "Section 5: balance-equation convergence diagnostics");
  if (!options) {
    return 0;
  }
  bench::print_banner("Model ablation M2", "balance-equation iteration diagnostics");

  util::Table table({"k", "p_r", "eta", "iterations", "residual", "x_0", "x_k"});
  table.set_precision(6);
  for (int k : {1, 2, 4, 8}) {
    for (double p_r : {0.5, 0.7, 0.9, 0.96}) {
      efficiency::EfficiencyParams params;
      params.k = k;
      params.p_r = p_r;
      const efficiency::EfficiencySolver solver(params);
      const efficiency::EfficiencyResult result = solver.solve();
      table.add_row({static_cast<long long>(k), p_r, result.eta,
                     static_cast<long long>(result.iterations), result.residual,
                     result.x.front(), result.x.back()});
    }
  }
  bench::emit_table(table, *options);

  // Fixed-point insensitivity: start from extreme distributions and verify
  // the same eta is reached by sweeping manually.
  std::cout << "\nfixed-point insensitivity (k=4, p_r=0.9):\n";
  efficiency::EfficiencyParams params;
  params.k = 4;
  params.p_r = 0.9;
  const efficiency::EfficiencySolver solver(params);
  for (const char* start : {"all-idle", "all-busy"}) {
    std::vector<double> x(5, 0.0);
    if (std::string(start) == "all-idle") {
      x[0] = 1.0;
    } else {
      x[4] = 1.0;
    }
    for (int iter = 0; iter < 3000; ++iter) {
      solver.apply_downward(x);
      solver.apply_upward(x);
    }
    std::cout << "  start " << start << " -> eta " << solver.efficiency(x) << '\n';
  }
  return 0;
}
