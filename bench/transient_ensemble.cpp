// Ablation M4: the transient ensemble model (Section 6/8 future work).
//
// Two comparisons:
//  1. Healthy swarm: the ensemble's population trajectory N_t (driven by
//     the per-peer chain with the nonstationary ϕ_t coupling) against the
//     simulator's leecher count — the transient machinery tracks both the
//     flash transient and the steady level.
//  2. The B = 3 skewed swarm of Figure 3/4(b): the identity-blind
//     ensemble (ϕ counts pieces, not WHICH pieces) predicts a bounded
//     population where the simulator diverges — quantifying exactly why
//     the paper leaves the exact stability analysis as future work.
#include <iostream>
#include <memory>
#include <utility>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "exp/thread_pool.hpp"
#include "model/ensemble.hpp"
#include "stability/experiment.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig healthy_config(std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 40 : 60;
  config.max_connections = 4;
  config.peer_set_size = 20;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 6;
  config.seeds_serve_all = true;  // keep the swarm in a genuine steady state
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "transient_ensemble",
      "Section 6/8: transient ensemble model vs the simulator");
  if (!options) {
    return 0;
  }
  bench::print_banner("Model ablation M4", "transient ensemble population dynamics");

  const bt::Round rounds = options->quick ? 150 : 250;

  // The three sections are independent computations; run them as tasks on
  // the shared pool and print in the original order once all complete.
  exp::ThreadPool pool(bench::effective_jobs(*options));

  // --- healthy swarm (simulate, calibrate, evolve the ensemble) ------------
  auto healthy_future = pool.submit([&]() {
    auto swarm = std::make_unique<bt::Swarm>(healthy_config(options->seed, options->quick));
    swarm->run_rounds(rounds);
    model::EnsembleParams ensemble;
    ensemble.peer = bench::calibrate_from_swarm(*swarm, /*w=*/0.5, /*gamma=*/0.1);
    ensemble.arrival_rate = swarm->config().arrival_rate;
    ensemble.rounds = rounds;
    return std::make_pair(std::move(swarm), model::run_ensemble(ensemble));
  });

  // --- the B = 3 divergence inputs (simulator and blind ensemble) ----------
  stability::StabilityConfig unstable;
  unstable.num_pieces = 3;
  unstable.rounds = rounds;
  unstable.arrival_rate = 4.0;
  unstable.initial_peers = options->quick ? 150 : 300;
  unstable.seed = options->seed;
  auto unstable_future =
      pool.submit([&unstable]() { return run_stability_experiment(unstable); });

  model::EnsembleParams blind;
  blind.peer.B = 3;
  blind.peer.k = 4;
  blind.peer.s = 40;
  blind.peer.p_r = 0.9;
  blind.peer.p_n = 0.9;
  blind.peer.p_init = 0.8;
  blind.peer.alpha = 0.3;
  blind.peer.gamma = 0.2;
  blind.arrival_rate = unstable.arrival_rate;
  blind.initial_population = unstable.initial_peers;
  blind.initial_phi = {0.1, 0.6, 0.3, 0.0};  // skewed piece COUNTS
  blind.rounds = rounds;
  auto blind_future = pool.submit([&blind]() { return model::run_ensemble(blind); });

  const auto [swarm_ptr, predicted] = healthy_future.get();
  const bt::Swarm& swarm = *swarm_ptr;

  std::cout << "healthy swarm: leecher population, simulator vs ensemble\n";
  util::Table table({"round", "sim leechers", "ensemble N_t", "ensemble completions/round"});
  table.set_precision(1);
  const bt::Round step = rounds / 20 == 0 ? 1 : rounds / 20;
  for (bt::Round r = 0; r < rounds; r += step) {
    const auto t = static_cast<double>(r);
    table.add_row({static_cast<long long>(r), swarm.metrics().population().value_at(t),
                   predicted.population.value_at(t), predicted.completion_rate.value_at(t)});
  }
  bench::emit_table(table, *options);
  std::cout << "ensemble verdict: population "
            << (predicted.population_growing ? "growing" : "stationary") << "\n\n";

  // --- the B = 3 divergence (identity-blind ensemble vs simulator) ---------
  const stability::StabilityResult sim_unstable = unstable_future.get();
  const model::EnsembleResult blind_run = blind_future.get();

  std::cout << "B = 3 skewed start: simulator vs identity-blind ensemble\n";
  util::Table contrast({"round", "sim peers (diverging)", "ensemble N_t (bounded)"});
  contrast.set_precision(1);
  for (bt::Round r = 0; r < rounds; r += step) {
    const auto t = static_cast<double>(r);
    contrast.add_row({static_cast<long long>(r), sim_unstable.population.value_at(t),
                      blind_run.population.value_at(t)});
  }
  bench::emit_table(contrast, *options);
  std::cout << "\nsim diverged: " << (sim_unstable.diverged ? "yes" : "no")
            << "; ensemble growing: " << (blind_run.population_growing ? "yes" : "no")
            << ".\nThe ensemble tracks piece COUNTS, not piece IDENTITIES, so the\n"
               "rare-piece evaporation that destabilizes the real swarm is invisible\n"
               "to it — the quantitative form of the paper's future-work caveat.\n";
  return 0;
}
