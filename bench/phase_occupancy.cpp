// Ablation M3: phase occupancy — simulator vs model (Section 3.2).
//
// The paper's central claim is that a download decomposes into three
// phases whose relative durations depend on the peer-set size s. This
// bench classifies every simulated leecher-round into a phase (using the
// same state rule as the model) and compares the resulting fractions with
// the model's expected per-phase sojourns across s, showing bootstrap and
// last-phase mass appearing as s shrinks in BOTH.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "model/download_model.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig swarm_config(std::uint32_t s, std::uint32_t B, std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = B;
  config.max_connections = 7;
  config.peer_set_size = s;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seed = seed;
  bt::InitialGroup warm;
  warm.count = 120;
  warm.piece_probs.assign(B, 0.35);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "phase_occupancy",
      "Section 3.2 validation: per-phase time fractions, sim vs model");
  if (!options) {
    return 0;
  }
  bench::print_banner("Model ablation M3", "phase occupancy across peer set sizes");

  const std::uint32_t B = options->quick ? 100 : 200;
  const bt::Round rounds = options->quick ? 150 : 300;

  util::Table table({"s", "sim bootstrap %", "sim efficient %", "sim last %",
                     "model bootstrap %", "model efficient %", "model last %"});
  table.set_precision(2);
  for (std::uint32_t s : {3u, 5u, 10u, 25u, 40u}) {
    double sim_boot = 0.0;
    double sim_eff = 0.0;
    double sim_last = 0.0;
    model::ModelParams calibrated;
    for (int run = 0; run < options->runs; ++run) {
      bt::Swarm swarm(
          swarm_config(s, B, options->seed + static_cast<std::uint64_t>(run) * 311));
      swarm.run_rounds(rounds);
      sim_boot += 100.0 * swarm.metrics().bootstrap_fraction() / options->runs;
      sim_eff += 100.0 * swarm.metrics().efficient_fraction() / options->runs;
      sim_last += 100.0 * swarm.metrics().last_phase_fraction() / options->runs;
      if (run == 0) {
        calibrated = bench::calibrate_from_swarm(swarm, /*w=*/0.5, /*gamma=*/0.1);
      }
    }
    const model::EvolutionResult evo = model::compute_evolution(calibrated, 20000);
    const double total = evo.bootstrap_rounds + evo.efficient_rounds + evo.last_rounds;
    table.add_row({static_cast<long long>(s), sim_boot, sim_eff, sim_last,
                   total > 0 ? 100.0 * evo.bootstrap_rounds / total : 0.0,
                   total > 0 ? 100.0 * evo.efficient_rounds / total : 0.0,
                   total > 0 ? 100.0 * evo.last_rounds / total : 0.0});
  }
  bench::emit_table(table, *options);
  return 0;
}
