// Figure 1(a): effect of the peer set size on the potential set.
//
// Plots (as table rows) the average potential-set-size / neighbor-set-size
// ratio against the number of pieces downloaded, for peer set sizes
// s in {5, 10, 25, 40}. Paper result: for small s the ratio dips at both
// ends of the download (bootstrap and last phase); for realistic s the
// ratio stays close to 1 through the whole efficient-download phase.
#include <vector>

#include "bench_common.hpp"
#include "bt/swarm.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig swarm_config(std::uint32_t s, std::uint32_t B, std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = B;
  config.max_connections = 7;
  config.peer_set_size = s;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seed = seed;
  bt::InitialGroup warm;
  warm.count = 120;
  warm.piece_probs.assign(B, 0.35);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      bench::parse_bench_options(argc, argv, "fig1a_potential_set",
                                 "Fig. 1(a): potential/neighbor set ratio vs pieces downloaded");
  if (!options) {
    return 0;
  }
  bench::print_banner("Figure 1(a)", "effect of the peer set size on the potential set");

  const std::uint32_t B = options->quick ? 100 : 200;
  const bt::Round rounds = options->quick ? 150 : 300;
  const std::vector<std::uint32_t> peer_set_sizes{5, 10, 25, 40};

  // Accumulate the ratio profile per s over the requested runs.
  std::vector<std::vector<double>> ratio_sum(peer_set_sizes.size(),
                                             std::vector<double>(B + 1, 0.0));
  std::vector<std::vector<int>> ratio_count(peer_set_sizes.size(),
                                            std::vector<int>(B + 1, 0));
  for (int run = 0; run < options->runs; ++run) {
    for (std::size_t si = 0; si < peer_set_sizes.size(); ++si) {
      bt::Swarm swarm(swarm_config(peer_set_sizes[si], B,
                                   options->seed + static_cast<std::uint64_t>(run) * 97));
      swarm.run_rounds(rounds);
      for (std::uint32_t b = 0; b <= B; ++b) {
        const double r = swarm.metrics().potential_ratio(b);
        if (r >= 0.0) {
          ratio_sum[si][b] += r;
          ++ratio_count[si][b];
        }
      }
    }
  }

  mpbt::util::Table table({"pieces", "PSS=5", "PSS=10", "PSS=25", "PSS=40"});
  table.set_precision(3);
  const std::uint32_t step = B / 20;
  for (std::uint32_t b = 0; b <= B; b += step) {
    std::vector<mpbt::util::Cell> row;
    row.emplace_back(static_cast<long long>(b));
    for (std::size_t si = 0; si < peer_set_sizes.size(); ++si) {
      row.emplace_back(ratio_count[si][b] == 0
                           ? -1.0
                           : ratio_sum[si][b] / ratio_count[si][b]);
    }
    table.add_row(std::move(row));
  }
  bench::emit_table(table, *options);
  return 0;
}
