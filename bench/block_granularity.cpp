// Ablation B1: piece-granular vs block-granular transfers (Section 2.1).
//
// The paper's model works at piece granularity (one trading round moves
// whole pieces), while the real protocol moves 16 KB blocks and only
// serves a piece once it is complete and verified. This ablation sweeps
// blocks_per_piece and shows how the finer granularity stretches download
// times (sub-linearly: waiting for partners dominates part of a download)
// while leaving the phase structure intact — supporting the model's
// piece-granular abstraction.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig block_config(std::uint32_t blocks, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 50 : 100;
  config.max_connections = 4;
  config.peer_set_size = 25;
  config.arrival_rate = 1.5;
  config.initial_seeds = 1;
  config.seed_capacity = 3;
  config.blocks_per_piece = blocks;
  config.seed = seed;
  bt::InitialGroup warm;
  warm.count = 60;
  warm.piece_probs.assign(config.num_pieces, 0.3);
  config.initial_groups.push_back(std::move(warm));
  config.arrival_piece_probs.assign(config.num_pieces, 0.2);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "block_granularity",
      "Section 2.1 ablation: download times vs blocks per piece");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation B1", "piece-granular vs block-granular transfers");

  const bt::Round rounds = options->quick ? 250 : 450;

  util::Table table({"blocks/piece", "completed", "mean download", "p95 download",
                     "bootstrap %", "efficient %", "last %"});
  table.set_precision(2);
  for (std::uint32_t blocks : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<double> times;
    double boot = 0.0;
    double eff = 0.0;
    double last = 0.0;
    for (int run = 0; run < options->runs; ++run) {
      bt::Swarm swarm(block_config(
          blocks, options->seed + static_cast<std::uint64_t>(run) * 53, options->quick));
      swarm.run_rounds(rounds);
      for (double t : swarm.metrics().download_times()) {
        times.push_back(t);
      }
      boot += 100.0 * swarm.metrics().bootstrap_fraction() / options->runs;
      eff += 100.0 * swarm.metrics().efficient_fraction() / options->runs;
      last += 100.0 * swarm.metrics().last_phase_fraction() / options->runs;
    }
    const numeric::Summary s = numeric::summarize(times);
    table.add_row({static_cast<long long>(blocks), static_cast<long long>(s.count), s.mean,
                   s.p95, boot, eff, last});
  }
  bench::emit_table(table, *options);
  std::cout << "\nThe phase mix stays stable across granularities: the model's\n"
               "piece-granular abstraction loses little.\n";
  return 0;
}
