// P1: micro-performance of the core components (google-benchmark).
//
// Not a paper figure — keeps regressions out of the simulator and the
// model kernels so the figure benches stay fast.
#include <benchmark/benchmark.h>

#include "bt/bitfield.hpp"
#include "bt/swarm.hpp"
#include "efficiency/balance.hpp"
#include "model/download_model.hpp"
#include "model/trading_power.hpp"
#include "numeric/logbinom.hpp"
#include "numeric/rng.hpp"

namespace {

using namespace mpbt;

void BM_RngBinomial(benchmark::State& state) {
  numeric::Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.binomial(n, 0.3));
  }
}
BENCHMARK(BM_RngBinomial)->Arg(8)->Arg(64)->Arg(512);

void BM_BitfieldMutualInterest(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  bt::Bitfield a(pieces);
  bt::Bitfield b(pieces);
  numeric::Rng rng(2);
  for (std::size_t p = 0; p < pieces; ++p) {
    if (rng.bernoulli(0.5)) {
      a.set(static_cast<bt::PieceIndex>(p));
    }
    if (rng.bernoulli(0.5)) {
      b.set(static_cast<bt::PieceIndex>(p));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bt::mutually_interested(a, b));
  }
}
BENCHMARK(BM_BitfieldMutualInterest)->Arg(200)->Arg(2000);

void BM_TradingPowerCurve(benchmark::State& state) {
  model::ModelParams params;
  params.B = static_cast<int>(state.range(0));
  params.validate_and_normalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::trading_power_curve(params));
  }
}
BENCHMARK(BM_TradingPowerCurve)->Arg(50)->Arg(200);

void BM_ComputeEvolution(benchmark::State& state) {
  model::ModelParams params;
  params.B = static_cast<int>(state.range(0));
  params.k = 7;
  params.s = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::compute_evolution(params, 5000));
  }
}
BENCHMARK(BM_ComputeEvolution)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_EfficiencySolve(benchmark::State& state) {
  efficiency::EfficiencyParams params;
  params.k = static_cast<int>(state.range(0));
  params.p_r = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(efficiency::EfficiencySolver(params).solve());
  }
}
BENCHMARK(BM_EfficiencySolve)->Arg(2)->Arg(8);

void BM_SwarmRound(benchmark::State& state) {
  bt::SwarmConfig config;
  config.num_pieces = 200;
  config.max_connections = 7;
  config.peer_set_size = 40;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  bt::InitialGroup warm;
  warm.count = static_cast<std::uint32_t>(state.range(0));
  warm.piece_probs.assign(config.num_pieces, 0.35);
  config.initial_groups.push_back(std::move(warm));
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(10);  // settle
  for (auto _ : state) {
    swarm.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(swarm.population()));
}
BENCHMARK(BM_SwarmRound)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
