// bench_swarm_step — round-step throughput of the swarm simulator core.
//
// Builds a warm steady-state swarm at each population size, runs a few
// warmup rounds, then times Swarm::step() over a measured window. This is
// the binding cost of every experiment in the repo (ISSUE 4): the sweep
// scenarios, the stability experiments, and the figure benches all reduce
// to millions of these round steps.
//
//   bench_swarm_step [--peers=500,2000] [--rounds=25] [--warmup=8]
//                    [--runs=3] [--seed=42] [--quick] [--check]
//                    [--csv=PATH] [--json=PATH] [--log-level=LEVEL]
//
// --check attaches the src/check InvariantSuite to the measured swarm,
// quantifying the cost of per-phase-boundary invariant checking; it is
// OFF by default so the pinned BENCH_0003.json numbers measure the bare
// simulator.
//
// --json writes the results in google-benchmark JSON schema (one
// "BM_SwarmStep/<peers>" entry per population, real_time = best ms per
// round) so `mpbt_report --append-bench --google-benchmark=...` can fold
// the run into the repo's mpbt-bench-v1 trajectory (BENCH_0003.json).
// --quick shrinks populations and windows for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bt/swarm.hpp"
#include "check/invariants.hpp"
#include "stability/entropy.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig step_config(std::uint32_t peers, std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 200;
  config.max_connections = 7;
  config.peer_set_size = 40;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seed = seed;
  // Warm mixed-completion population with age-correlated content (the
  // efficiency_vs_k shape), replenished by arrivals and capped at the
  // target population so the measured window stays at scale.
  const std::vector<double> ramp = stability::ramp_piece_probs(config.num_pieces, 0.75, 0.05);
  bt::InitialGroup warm;
  warm.count = peers;
  warm.piece_probs = ramp;
  config.initial_groups.push_back(std::move(warm));
  config.arrival_piece_probs = ramp;
  config.arrival_rate = std::max(1.0, static_cast<double>(peers) / 100.0);
  config.max_population = peers;
  return config;
}

std::vector<std::uint32_t> parse_peer_list(const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::string item;
  std::istringstream stream(csv);
  while (std::getline(stream, item, ',')) {
    if (item.empty()) {
      continue;
    }
    const long long value = std::stoll(item);
    if (value <= 0) {
      throw std::invalid_argument("--peers entries must be positive");
    }
    out.push_back(static_cast<std::uint32_t>(value));
  }
  if (out.empty()) {
    throw std::invalid_argument("--peers must name at least one population");
  }
  return out;
}

struct StepResult {
  std::uint32_t peers = 0;
  int reps = 0;
  int rounds = 0;
  double mean_ms = 0.0;
  double best_ms = 0.0;
  double best_rounds_per_sec = 0.0;
};

StepResult measure(std::uint32_t peers, int reps, int warmup, int rounds,
                   std::uint64_t seed, bool check) {
  StepResult result;
  result.peers = peers;
  result.reps = reps;
  result.rounds = rounds;
  result.best_ms = std::numeric_limits<double>::infinity();
  double total_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    bt::Swarm swarm(step_config(peers, seed + static_cast<std::uint64_t>(rep)));
    check::InvariantSuite suite;
    if (check) {
      swarm.set_phase_observer(&suite);
    }
    swarm.run_rounds(static_cast<bt::Round>(warmup));
    const auto start = std::chrono::steady_clock::now();
    swarm.run_rounds(static_cast<bt::Round>(rounds));
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(rounds);
    total_ms += ms;
    result.best_ms = std::min(result.best_ms, ms);
  }
  result.mean_ms = total_ms / static_cast<double>(reps);
  result.best_rounds_per_sec = 1000.0 / result.best_ms;
  return result;
}

/// google-benchmark JSON schema subset, as consumed by
/// report::parse_google_benchmark.
void write_json(const std::string& path, const std::vector<StepResult>& results) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open " + path);
  }
  file.precision(17);
  file << "{\n  \"context\": {\"executable\": \"bench_swarm_step\"},\n"
       << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StepResult& r = results[i];
    file << "    {\"name\": \"BM_SwarmStep/" << r.peers << "\", \"run_type\": \"iteration\", "
         << "\"real_time\": " << r.best_ms << ", \"cpu_time\": " << r.best_ms
         << ", \"time_unit\": \"ms\", \"iterations\": " << r.reps * r.rounds << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  file << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_swarm_step",
                      "Round-step throughput of bt::Swarm at fixed populations.");
  cli.add_option("peers", "comma-separated population sizes", "500,2000");
  cli.add_option("rounds", "measured rounds per repetition", "25");
  cli.add_option("warmup", "warmup rounds before timing", "8");
  cli.add_option("runs", "repetitions per population (best-of)", "3");
  cli.add_option("seed", "base RNG seed", "42");
  cli.add_flag("quick", "small populations / short windows for smoke runs");
  cli.add_flag("check", "attach the invariant suite to the measured swarm");
  cli.add_option("csv", "also write the table to this CSV path", "");
  cli.add_option("json", "write google-benchmark JSON here (for --append-bench)", "");
  cli.add_option("log-level", "debug|info|warn|error|off (default: warn, or $MPBT_LOG)", "");
  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
    if (const std::string level = cli.get("log-level"); !level.empty()) {
      util::set_log_level(util::parse_log_level(level));
    }
    const bool quick = cli.has_flag("quick");
    std::vector<std::uint32_t> peer_counts = parse_peer_list(cli.get("peers"));
    int rounds = std::max(1, static_cast<int>(cli.get_int("rounds")));
    int warmup = std::max(0, static_cast<int>(cli.get_int("warmup")));
    int reps = std::max(1, static_cast<int>(cli.get_int("runs")));
    if (quick) {
      peer_counts = {200};
      rounds = std::min(rounds, 8);
      warmup = std::min(warmup, 3);
      reps = std::min(reps, 2);
    }
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    std::cout << "== bench_swarm_step — Swarm::step() throughput (B=200, k=7, s=40) ==\n\n";
    util::Table table({"peers", "rounds", "reps", "ms/round (mean)", "ms/round (best)",
                       "rounds/s (best)"});
    table.set_precision(3);
    std::vector<StepResult> results;
    for (const std::uint32_t peers : peer_counts) {
      const StepResult r = measure(peers, reps, warmup, rounds, seed, cli.has_flag("check"));
      table.add_row({static_cast<long long>(r.peers), static_cast<long long>(r.rounds),
                     static_cast<long long>(r.reps), r.mean_ms, r.best_ms,
                     r.best_rounds_per_sec});
      results.push_back(r);
    }
    table.print_text(std::cout);
    if (const std::string csv = cli.get("csv"); !csv.empty()) {
      table.write_csv_file(csv);
      std::cout << "\n[csv written to " << csv << "]\n";
    }
    if (const std::string json = cli.get("json"); !json.empty()) {
      write_json(json, results);
      std::cout << "[json written to " << json << "]\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "bench_swarm_step: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
