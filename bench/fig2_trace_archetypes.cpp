// Figure 2: download process and potential-set evolution of three clients.
//
// Reproduces the paper's three measured archetypes with the instrumented
// simulator client (substitute for the BitTornado measurement study; see
// DESIGN.md): (a)/(b) a smooth download, (c)/(d) a significant last
// download phase, (e)/(f) a significant bootstrap phase. For each client
// the bench prints the cumulative-bytes and potential-set-size series plus
// the detected phase segmentation and the download-rate/potential-set
// correlation the paper highlights.
#include <iostream>

#include "analysis/compare.hpp"
#include "analysis/phase_detect.hpp"
#include "bench_common.hpp"
#include "trace/archetypes.hpp"

namespace {

using namespace mpbt;

void print_trace(const trace::ClientTrace& trace, const bench::BenchOptions& options,
                 const analysis::PhaseDetectOptions& detect_options) {
  std::cout << "--- client archetype: " << trace.label << " ---\n";
  util::Table table({"round", "cumulative bytes", "potential set", "pieces"});
  const std::size_t rows = 16;
  const std::size_t stride = std::max<std::size_t>(1, trace.points.size() / rows);
  for (std::size_t i = 0; i < trace.points.size(); i += stride) {
    const auto& p = trace.points[i];
    table.add_row({p.time, static_cast<long long>(p.cumulative_bytes),
                   static_cast<long long>(p.potential_set_size),
                   static_cast<long long>(p.pieces_held)});
  }
  const auto& last = trace.points.back();
  table.add_row({last.time, static_cast<long long>(last.cumulative_bytes),
                 static_cast<long long>(last.potential_set_size),
                 static_cast<long long>(last.pieces_held)});
  bench::emit_table(table, options);

  const analysis::PhaseSegmentation seg = analysis::detect_phases(trace, detect_options);
  std::cout << "completed:            " << (trace.completed ? "yes" : "no") << '\n';
  std::cout << "bootstrap phase:      " << seg.bootstrap_duration << " rounds ("
            << 100.0 * seg.bootstrap_fraction() << "% of trace)\n";
  std::cout << "efficient download:   " << seg.efficient_duration << " rounds\n";
  std::cout << "last download phase:  " << seg.last_duration << " rounds ("
            << 100.0 * seg.last_fraction() << "% of trace)\n";
  std::cout << "rate/potential corr:  " << analysis::rate_potential_correlation(trace)
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::parse_bench_options(
      argc, argv, "fig2_trace_archetypes",
      "Fig. 2: three client download archetypes (smooth / last-phase / bootstrap)");
  if (!options) {
    return 0;
  }
  bench::print_banner("Figure 2", "client download processes and potential-set evolution");
  // CSV (if requested) captures the last archetype's table; per-trace CSVs
  // would need three paths, so keep stdout as the primary artifact here.
  const std::string csv = options->csv_path;
  options->csv_path.clear();

  analysis::PhaseDetectOptions detect_options;
  detect_options.last_phase_potential = 1;

  print_trace(trace::make_smooth_trace(), *options, detect_options);
  print_trace(trace::make_last_phase_trace(), *options, detect_options);
  options->csv_path = csv;
  print_trace(trace::make_bootstrap_trace(), *options, detect_options);
  return 0;
}
