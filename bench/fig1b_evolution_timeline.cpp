// Figure 1(b): evolution timeline — simulation vs model.
//
// For peer set sizes s = 5 and s = 50, prints the average round at which a
// peer holds b pieces, from (i) the swarm simulation and (ii) the exact
// multiphased Markov model with parameters calibrated from the simulation.
// Paper result: the model tracks the simulation closely for large s and
// remains a good first approximation for small s (where bootstrap and
// last-phase stalls make the timeline steeper at both ends).
#include <vector>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "model/download_model.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig swarm_config(std::uint32_t s, std::uint32_t B, std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = B;
  config.max_connections = 7;
  config.peer_set_size = s;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seed = seed;
  bt::InitialGroup warm;
  warm.count = 120;
  warm.piece_probs.assign(B, 0.35);
  config.initial_groups.push_back(std::move(warm));
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "fig1b_evolution_timeline", "Fig. 1(b): download timeline, sim vs model");
  if (!options) {
    return 0;
  }
  bench::print_banner("Figure 1(b)", "evolution timeline (rounds to reach b pieces)");

  const std::uint32_t B = options->quick ? 100 : 200;
  const bt::Round rounds = options->quick ? 200 : 400;
  const std::vector<std::uint32_t> peer_set_sizes{5, 50};

  std::vector<std::vector<double>> sim_sum(peer_set_sizes.size(),
                                           std::vector<double>(B + 1, 0.0));
  std::vector<std::vector<int>> sim_count(peer_set_sizes.size(), std::vector<int>(B + 1, 0));
  std::vector<std::vector<double>> model_timeline(peer_set_sizes.size());

  for (std::size_t si = 0; si < peer_set_sizes.size(); ++si) {
    model::ModelParams calibrated;
    for (int run = 0; run < options->runs; ++run) {
      bt::Swarm swarm(swarm_config(peer_set_sizes[si], B,
                                   options->seed + static_cast<std::uint64_t>(run) * 131));
      swarm.run_rounds(rounds);
      for (std::uint32_t b = 1; b <= B; ++b) {
        const double t = swarm.metrics().timeline(b);
        if (t >= 0.0) {
          sim_sum[si][b] += t;
          ++sim_count[si][b];
        }
      }
      if (run == 0) {
        calibrated = bench::calibrate_from_swarm(swarm, /*w=*/0.5, /*gamma=*/0.1);
      }
    }
    model_timeline[si] = model::compute_evolution(calibrated, 20000).expected_timeline;
  }

  mpbt::util::Table table(
      {"pieces", "sim PSS=5", "model PSS=5", "sim PSS=50", "model PSS=50"});
  table.set_precision(1);
  const std::uint32_t step = B / 20;
  for (std::uint32_t b = step; b <= B; b += step) {
    std::vector<mpbt::util::Cell> row;
    row.emplace_back(static_cast<long long>(b));
    for (std::size_t si = 0; si < peer_set_sizes.size(); ++si) {
      row.emplace_back(sim_count[si][b] == 0 ? -1.0 : sim_sum[si][b] / sim_count[si][b]);
      row.emplace_back(model_timeline[si][b]);
    }
    table.add_row(std::move(row));
  }
  bench::emit_table(table, *options);
  return 0;
}
