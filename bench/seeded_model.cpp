// Ablation S2: the seeding extension of the download model (Section 7.2)
// validated against seeded swarms.
//
// The paper proposes modeling seeds as "extra connections, which do not
// require the strict tit-for-tat policy". The extension adds a per-round
// probability seed_boost of one free piece. This bench sweeps the boost in
// the model and the seed service capacity in the simulator and shows both
// produce the same qualitative speedup curve.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "model/download_model.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

double simulate_mean_download(std::uint32_t seed_capacity, bool serve_all,
                              std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 60 : 100;
  config.max_connections = 4;
  config.peer_set_size = 30;
  config.arrival_rate = 2.0;
  config.initial_seeds = 2;
  config.seed_capacity = seed_capacity;
  config.seeds_serve_all = serve_all;
  config.seed = seed;
  config.arrival_piece_probs.assign(config.num_pieces, 0.25);
  bt::SwarmConfig::SeedMode mode = bt::SwarmConfig::SeedMode::Classic;
  config.seed_mode = mode;
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(quick ? 150 : 250);
  return numeric::summarize(swarm.metrics().download_times()).mean;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "seeded_model",
      "Section 7.2 ablation: seeding as tit-for-tat-free extra connections");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation S2", "seed-aware model vs seeded swarms");

  // Model side: expected completion vs seed_boost.
  std::cout << "model: expected completion vs seed boost sigma\n";
  util::Table model_table({"seed_boost", "expected completion", "bootstrap", "last phase"});
  model_table.set_precision(2);
  for (double boost : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    model::ModelParams params;
    params.B = options->quick ? 60 : 100;
    params.k = 4;
    params.s = 30;
    params.p_r = 0.95;
    params.p_n = 0.9;
    params.p_init = 0.8;
    params.alpha = 0.2;
    params.gamma = 0.1;
    params.seed_boost = boost;
    const model::EvolutionResult evo = model::compute_evolution(params);
    model_table.add_row({boost, evo.expected_completion, evo.bootstrap_rounds,
                         evo.last_rounds});
  }
  bench::emit_table(model_table, *options);

  // Simulator side: mean download vs seed service capacity.
  std::cout << "\nsimulator: mean download vs seed service capacity\n";
  util::Table sim_table({"seed capacity", "serve-all", "mean download (rounds)"});
  sim_table.set_precision(2);
  for (std::uint32_t capacity : {2u, 6u, 12u, 24u}) {
    for (bool serve_all : {false, true}) {
      double mean = 0.0;
      for (int run = 0; run < options->runs; ++run) {
        mean += simulate_mean_download(capacity, serve_all,
                                       options->seed + static_cast<std::uint64_t>(run) * 41,
                                       options->quick) /
                options->runs;
      }
      sim_table.add_row({static_cast<long long>(capacity),
                         std::string(serve_all ? "yes" : "no"), mean});
    }
  }
  bench::emit_table(sim_table, *options);
  std::cout << "\nBoth curves fall monotonically: free seed uploads shorten downloads in\n"
               "the model (boost) exactly as increased seed service does in the swarm.\n";
  return 0;
}
