// Ablation K1: the choking algorithm (Section 2.1).
//
// The model abstracts peer selection as random matching within the
// potential set; real BitTorrent runs the rate-based choking algorithm
// ("prefers peers with the highest upload rates") with a rotating
// optimistic unchoke. This bench compares the two in a heterogeneous
// swarm: overall efficiency and throughput, plus the per-class fairness
// coupling tit-for-tat is designed to enforce.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig choking_config(bt::ChokeAlgorithm algorithm, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 80 : 150;
  config.max_connections = 4;
  config.peer_set_size = 30;
  config.arrival_rate = 2.5;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  config.choke_algorithm = algorithm;
  config.seed = seed;
  config.arrival_piece_probs.assign(config.num_pieces, 0.2);
  config.bandwidth_classes = {{0.4, 1}, {0.4, 2}, {0.2, 4}};
  return config;
}

const char* algorithm_name(bt::ChokeAlgorithm algorithm) {
  return algorithm == bt::ChokeAlgorithm::RandomMatching ? "random-matching" : "rate-based";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "choking_policies",
      "Section 2.1 ablation: random matching vs rate-based choking");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation K1", "random matching vs the rate-based choking algorithm");

  const bt::Round rounds = options->quick ? 200 : 350;

  util::Table table({"algorithm", "class", "completed", "mean download", "p95 download",
                     "upload utilization"});
  table.set_precision(2);
  const char* class_names[] = {"slow (1)", "medium (2)", "fast (4)"};
  for (auto algorithm : {bt::ChokeAlgorithm::RandomMatching, bt::ChokeAlgorithm::RateBased}) {
    std::vector<std::vector<double>> times(3);
    double utilization = 0.0;
    for (int run = 0; run < options->runs; ++run) {
      bt::Swarm swarm(choking_config(
          algorithm, options->seed + static_cast<std::uint64_t>(run) * 67, options->quick));
      swarm.run_rounds(rounds);
      for (std::uint32_t cls = 0; cls < 3; ++cls) {
        for (double t : swarm.metrics().download_times_for_class(cls)) {
          times[cls].push_back(t);
        }
      }
      utilization += swarm.metrics().mean_transfer_efficiency(rounds / 4) / options->runs;
    }
    for (std::uint32_t cls = 0; cls < 3; ++cls) {
      const numeric::Summary s = numeric::summarize(times[cls]);
      table.add_row({std::string(algorithm_name(algorithm)), std::string(class_names[cls]),
                     static_cast<long long>(s.count), s.mean, s.p95,
                     cls == 0 ? utilization : -1.0});
    }
  }
  bench::emit_table(table, *options);
  std::cout << "\nBoth algorithms enforce the tit-for-tat coupling (slow uploaders download\n"
               "slowest). Rate-based choking adds reciprocity clustering on top of the\n"
               "random-matching abstraction the model uses.\n";
  return 0;
}
