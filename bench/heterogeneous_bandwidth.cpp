// Ablation H1: heterogeneous upload bandwidth under strict tit-for-tat.
//
// The paper assumes homogeneous bandwidth (Section 3) and defers
// heterogeneity to future work, pointing at the multiclass analysis of
// ref. [11]. This ablation relaxes the assumption in the simulator: peers
// fall into slow / medium / fast upload classes, and strict tit-for-tat
// makes download speed track upload capacity (reciprocation throttles
// both directions of an exchange). The bench reports per-class download
// times and the overall efficiency cost of heterogeneity.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig hetero_config(bool heterogeneous, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 100 : 200;
  config.max_connections = 5;
  config.peer_set_size = 30;
  config.arrival_rate = 3.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  config.seed = seed;
  config.arrival_piece_probs.assign(config.num_pieces, 0.2);
  if (heterogeneous) {
    // 50% slow (1 upload/round), 30% medium (3), 20% fast (5 = k).
    config.bandwidth_classes = {{0.5, 1}, {0.3, 3}, {0.2, 5}};
  } else {
    // Homogeneous reference at the mean capacity (1*.5 + 3*.3 + 5*.2 = 2.4
    // -> round to 2 to keep it integral but comparable).
    config.bandwidth_classes = {{1.0, 2}};
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "heterogeneous_bandwidth",
      "Ablation H1: per-class download times under strict tit-for-tat");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation H1", "heterogeneous upload bandwidth");

  const bt::Round rounds = options->quick ? 200 : 350;
  const char* class_names[] = {"slow (1/round)", "medium (3/round)", "fast (5/round)"};

  util::Table table({"scenario", "class", "completed", "mean download", "p95 download"});
  table.set_precision(2);

  // Heterogeneous swarm: per-class download times.
  {
    std::vector<std::vector<double>> times(3);
    for (int run = 0; run < options->runs; ++run) {
      bt::Swarm swarm(hetero_config(true, options->seed + static_cast<std::uint64_t>(run) * 29,
                                    options->quick));
      swarm.run_rounds(rounds);
      for (std::uint32_t cls = 0; cls < 3; ++cls) {
        for (double t : swarm.metrics().download_times_for_class(cls)) {
          times[cls].push_back(t);
        }
      }
    }
    for (std::uint32_t cls = 0; cls < 3; ++cls) {
      const numeric::Summary s = numeric::summarize(times[cls]);
      table.add_row({std::string("heterogeneous"), std::string(class_names[cls]),
                     static_cast<long long>(s.count), s.mean, s.p95});
    }
  }

  // Homogeneous reference at the mean capacity.
  {
    std::vector<double> times;
    for (int run = 0; run < options->runs; ++run) {
      bt::Swarm swarm(hetero_config(false, options->seed + static_cast<std::uint64_t>(run) * 29,
                                    options->quick));
      swarm.run_rounds(rounds);
      for (double t : swarm.metrics().download_times()) {
        times.push_back(t);
      }
    }
    const numeric::Summary s = numeric::summarize(times);
    table.add_row({std::string("homogeneous"), std::string("all (2/round)"),
                   static_cast<long long>(s.count), s.mean, s.p95});
  }
  bench::emit_table(table, *options);
  std::cout << "\nStrict tit-for-tat couples download speed to upload capacity: the slow\n"
               "class pays the largest penalty, matching the fairness coupling the\n"
               "protocol is designed to enforce (Section 2.1).\n";
  return 0;
}
