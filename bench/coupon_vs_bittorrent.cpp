// Ablation C1: BitTorrent (neighbor-set, k connections) vs the coupon
// replication system (global random encounters, single connection).
//
// Section 2.2 contrasts the two designs: in a coupon system there is "a
// positive probability of failed encounters if peers do not have pieces to
// trade", while BitTorrent encounters only happen inside the potential
// set. This bench quantifies both: the coupon simulator's failed-encounter
// fraction and completion times against the swarm simulator's starvation
// rate and download times at matched piece counts.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "coupon/coupon.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

struct SideResult {
  double mean_completion = 0.0;
  double p95_completion = 0.0;
  double failed_fraction = 0.0;
  std::uint64_t completed = 0;
};

SideResult run_bittorrent(std::uint32_t B, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = B;
  config.max_connections = 4;
  config.peer_set_size = 30;
  config.arrival_rate = 3.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seed = seed;
  bt::InitialGroup warm;
  warm.count = 100;
  warm.piece_probs.assign(B, 0.3);
  config.initial_groups.push_back(std::move(warm));
  bt::Swarm swarm(config);
  swarm.run_rounds(quick ? 150 : 300);

  SideResult out;
  const numeric::Summary s = numeric::summarize(swarm.metrics().download_times());
  out.mean_completion = s.mean;
  out.p95_completion = s.p95;
  out.completed = swarm.metrics().completed_count();
  // BitTorrent "failed encounters": leecher-rounds starving (non-empty NS,
  // empty potential set) per piece-holding leecher round.
  double starving = static_cast<double>(swarm.metrics().failed_encounters());
  double total_rounds = 0.0;
  for (const auto& sample : swarm.metrics().population().samples()) {
    total_rounds += sample.value;
  }
  out.failed_fraction = total_rounds == 0.0 ? 0.0 : starving / total_rounds;
  return out;
}

SideResult run_coupon(std::uint32_t B, std::uint64_t seed, bool quick) {
  coupon::CouponConfig config;
  config.num_coupons = B;
  config.arrival_rate = 3.0;
  config.encounter_rate = 1.0;
  config.initial_peers = 100;
  config.horizon = quick ? 150.0 : 300.0;
  config.seed = seed;
  coupon::CouponSimulator sim(config);
  const coupon::CouponResult result = sim.run();
  SideResult out;
  out.mean_completion = result.completion_time.mean;
  out.p95_completion = result.completion_time.p95;
  out.failed_fraction = result.failed_fraction();
  out.completed = result.completed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "coupon_vs_bittorrent",
      "Section 2.2 contrast: coupon replication vs BitTorrent");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation C1",
                      "coupon replication (global random encounters) vs BitTorrent");

  util::Table table({"B", "system", "completed", "mean completion", "p95 completion",
                     "failed-encounter fraction"});
  table.set_precision(3);
  for (std::uint32_t B : {10u, 20u, 40u}) {
    SideResult bt_result;
    SideResult coupon_result;
    for (int run = 0; run < options->runs; ++run) {
      const std::uint64_t seed = options->seed + static_cast<std::uint64_t>(run) * 59;
      const SideResult b = run_bittorrent(B, seed, options->quick);
      const SideResult c = run_coupon(B, seed, options->quick);
      bt_result.mean_completion += b.mean_completion / options->runs;
      bt_result.p95_completion += b.p95_completion / options->runs;
      bt_result.failed_fraction += b.failed_fraction / options->runs;
      bt_result.completed += b.completed;
      coupon_result.mean_completion += c.mean_completion / options->runs;
      coupon_result.p95_completion += c.p95_completion / options->runs;
      coupon_result.failed_fraction += c.failed_fraction / options->runs;
      coupon_result.completed += c.completed;
    }
    table.add_row({static_cast<long long>(B), std::string("bittorrent"),
                   static_cast<long long>(bt_result.completed), bt_result.mean_completion,
                   bt_result.p95_completion, bt_result.failed_fraction});
    table.add_row({static_cast<long long>(B), std::string("coupon"),
                   static_cast<long long>(coupon_result.completed),
                   coupon_result.mean_completion, coupon_result.p95_completion,
                   coupon_result.failed_fraction});
  }
  bench::emit_table(table, *options);
  std::cout << "\nNote: completion timescales are not directly comparable across the two\n"
               "systems (rounds vs encounter-time units); the structural contrast is the\n"
               "failed-encounter column — near zero for BitTorrent's potential-set\n"
               "encounters, strictly positive for global random coupon encounters.\n";
  return 0;
}
