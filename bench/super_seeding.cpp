// Ablation S1: classic seeding vs super-seeding (Section 7.2).
//
// Flash-crowd workload: one seed, a burst of empty peers, no arrivals.
// Super-seeding spreads the seed's upload budget across distinct pieces,
// which keeps the swarm's entropy high while it forms and lets stragglers
// finish; classic seeding re-serves popular pieces and leaves a skewed
// piece distribution behind.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

struct FlashResult {
  int full_injection_round = -1;  ///< every piece has a non-seed copy
  int first_completion_round = -1;
  std::size_t completed = 0;
  double mean_entropy = 0.0;
  numeric::Summary download_times;
};

FlashResult run_flash(bt::SwarmConfig::SeedMode mode, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 60 : 100;
  config.max_connections = 5;
  config.peer_set_size = 30;
  config.arrival_rate = 0.0;
  config.initial_seeds = 1;
  config.seed_capacity = 5;
  config.seeds_serve_all = true;
  config.seed_mode = mode;
  config.seed = seed;
  bt::InitialGroup flash;
  flash.count = quick ? 40 : 60;  // empty peers, all at once
  config.initial_groups.push_back(std::move(flash));
  bt::Swarm swarm(std::move(config));

  FlashResult result;
  const bt::Round rounds = quick ? 250 : 400;
  for (bt::Round r = 0; r < rounds; ++r) {
    swarm.step();
    if (result.full_injection_round < 0) {
      bool all_injected = true;
      for (std::uint32_t count : swarm.piece_counts()) {
        if (count < 2) {  // the seed's copy plus at least one leecher copy
          all_injected = false;
          break;
        }
      }
      if (all_injected) {
        result.full_injection_round = static_cast<int>(r);
      }
    }
    if (result.first_completion_round < 0 && swarm.metrics().completed_count() > 0) {
      result.first_completion_round = static_cast<int>(r);
    }
    if (swarm.num_leechers() == 0) {
      break;
    }
  }
  result.completed = swarm.metrics().completed_count();
  result.mean_entropy = swarm.metrics().mean_entropy(5);
  result.download_times = numeric::summarize(swarm.metrics().download_times());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "super_seeding", "Section 7.2 ablation: classic vs super-seeding");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation S1", "classic seeding vs super-seeding in a flash crowd");

  util::Table table({"seed mode", "full injection (round)", "first completion", "completed",
                     "mean download", "p95 download", "mean entropy"});
  table.set_precision(3);
  for (auto mode :
       {bt::SwarmConfig::SeedMode::Classic, bt::SwarmConfig::SeedMode::SuperSeed}) {
    double injection = 0.0;
    double first = 0.0;
    double completed = 0.0;
    double entropy = 0.0;
    double mean_dl = 0.0;
    double p95_dl = 0.0;
    for (int run = 0; run < options->runs; ++run) {
      const FlashResult r =
          run_flash(mode, options->seed + static_cast<std::uint64_t>(run) * 37, options->quick);
      injection += static_cast<double>(r.full_injection_round) / options->runs;
      first += static_cast<double>(r.first_completion_round) / options->runs;
      completed += static_cast<double>(r.completed) / options->runs;
      entropy += r.mean_entropy / options->runs;
      mean_dl += r.download_times.mean / options->runs;
      p95_dl += r.download_times.p95 / options->runs;
    }
    table.add_row({std::string(mode == bt::SwarmConfig::SeedMode::Classic ? "classic"
                                                                          : "super-seed"),
                   injection, first, completed, mean_dl, p95_dl, entropy});
  }
  bench::emit_table(table, *options);
  return 0;
}
