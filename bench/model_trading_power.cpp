// Ablation M1: the trading-power curve p(b+n) of Eq. (1).
//
// Section 3.2 claims: p rises from 0.5 at b+n = 1 to its maximum at
// b+n = B/2 and decreases back to 0.5 at b+n = B-1 (under uniform ϕ).
// This bench prints the curve for several B and for a skewed ϕ, showing
// how skew shifts the trading power (the stability mechanism of Section 6).
#include <iostream>

#include "bench_common.hpp"
#include "model/trading_power.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  const auto options = bench::parse_bench_options(
      argc, argv, "model_trading_power", "Eq. (1): trading power p(b+n) curves");
  if (!options) {
    return 0;
  }
  bench::print_banner("Model ablation M1", "trading power p(b+n), Eq. (1)");

  const int B = options->quick ? 50 : 200;

  model::ModelParams uniform;
  uniform.B = B;
  uniform.validate_and_normalize();
  const std::vector<double> uniform_curve = model::trading_power_curve(uniform);

  // Skewed ϕ: most peers hold few pieces (young swarm).
  model::ModelParams young;
  young.B = B;
  young.phi.assign(static_cast<std::size_t>(B) + 1, 0.0);
  for (int j = 1; j <= B - 1; ++j) {
    young.phi[static_cast<std::size_t>(j)] = 1.0 / (1.0 + 0.05 * j);
  }
  young.validate_and_normalize();
  const std::vector<double> young_curve = model::trading_power_curve(young);

  // Skewed ϕ: most peers nearly complete (old swarm).
  model::ModelParams old_swarm;
  old_swarm.B = B;
  old_swarm.phi.assign(static_cast<std::size_t>(B) + 1, 0.0);
  for (int j = 1; j <= B - 1; ++j) {
    old_swarm.phi[static_cast<std::size_t>(j)] = 1.0 / (1.0 + 0.05 * (B - j));
  }
  old_swarm.validate_and_normalize();
  const std::vector<double> old_curve = model::trading_power_curve(old_swarm);

  util::Table table({"b+n", "p (uniform phi)", "p (young swarm)", "p (old swarm)"});
  table.set_precision(4);
  const int step = std::max(1, B / 25);
  for (int m = 0; m <= B; m += step) {
    table.add_row({static_cast<long long>(m), uniform_curve[static_cast<std::size_t>(m)],
                   young_curve[static_cast<std::size_t>(m)],
                   old_curve[static_cast<std::size_t>(m)]});
  }
  bench::emit_table(table, *options);

  // Report the paper's three checkpoints.
  std::cout << "\np(1) = " << uniform_curve[1] << " (paper: ~0.5)\n";
  std::cout << "p(B/2) = " << uniform_curve[static_cast<std::size_t>(B / 2)]
            << " (paper: maximum)\n";
  std::cout << "p(B-1) = " << uniform_curve[static_cast<std::size_t>(B - 1)]
            << " (paper: ~0.5)\n";
  return 0;
}
