// bench_ecosystem_step — round-step throughput of the multi-torrent
// ecosystem driver (src/eco).
//
// Builds a steady churning ecosystem at each torrent count, runs a few
// warmup rounds, then times Ecosystem::step() over a measured window.
// This is the binding cost of the ecosystem_transient scenario and the
// mpbt_ecosystem CLI: takedown sweeps reduce to thousands of these
// steps over N swarms plus the serial session-coordination phases.
//
//   bench_ecosystem_step [--torrents=4,16] [--rounds=20] [--warmup=8]
//                        [--runs=3] [--jobs=1] [--seed=42] [--quick]
//                        [--csv=PATH] [--json=PATH] [--log-level=LEVEL]
//
// The second table times the tracker/peer-store pre-reserve path: one
// flash-crowd burst round measured with and without reserve (the
// Tracker::reserve / PeerStore::reserve satellite), so the ablation is
// visible in bench output rather than asserted blindly.
//
// --json writes the results in google-benchmark JSON schema (one
// "BM_EcosystemStep/<torrents>" entry per count, real_time = best ms
// per round) so `mpbt_report --append-bench --google-benchmark=...`
// can fold the run into the repo's mpbt-bench-v1 trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "eco/ecosystem.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace mpbt;

eco::EcosystemConfig bench_config(std::uint32_t torrents, std::uint64_t seed, bool quick) {
  eco::EcosystemConfig config;
  config.num_torrents = torrents;
  config.zipf_s = 1.0;
  config.arrival_rate = quick ? 4.0 : 8.0;
  config.initial_sessions = quick ? 40 * torrents : 80 * torrents;
  config.max_wants = 3;
  config.swarm.num_pieces = quick ? 40 : 60;
  config.swarm.max_connections = 4;
  config.swarm.peer_set_size = 20;
  config.swarm.initial_seeds = 2;
  config.swarm.seed_capacity = 6;
  config.swarm.seeds_serve_all = true;
  config.swarm.seed_linger_rounds = 15;
  config.swarm.abort_rate = 0.01;
  config.seed = seed;
  return config;
}

std::vector<std::uint32_t> parse_torrent_list(const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::string item;
  std::istringstream stream(csv);
  while (std::getline(stream, item, ',')) {
    if (item.empty()) {
      continue;
    }
    const long long value = std::stoll(item);
    if (value <= 0) {
      throw std::invalid_argument("--torrents entries must be positive");
    }
    out.push_back(static_cast<std::uint32_t>(value));
  }
  if (out.empty()) {
    throw std::invalid_argument("--torrents must name at least one count");
  }
  return out;
}

struct StepResult {
  std::uint32_t torrents = 0;
  int reps = 0;
  int rounds = 0;
  std::size_t population = 0;
  double mean_ms = 0.0;
  double best_ms = 0.0;
  double best_rounds_per_sec = 0.0;
};

StepResult measure(std::uint32_t torrents, int reps, int warmup, int rounds,
                   std::size_t jobs, std::uint64_t seed, bool quick) {
  StepResult result;
  result.torrents = torrents;
  result.reps = reps;
  result.rounds = rounds;
  result.best_ms = std::numeric_limits<double>::infinity();
  double total_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    eco::Ecosystem ecosystem(
        bench_config(torrents, seed + static_cast<std::uint64_t>(rep), quick), jobs);
    ecosystem.run_rounds(static_cast<bt::Round>(warmup));
    const auto start = std::chrono::steady_clock::now();
    ecosystem.run_rounds(static_cast<bt::Round>(rounds));
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(rounds);
    total_ms += ms;
    result.best_ms = std::min(result.best_ms, ms);
    result.population = std::max(result.population, ecosystem.population());
  }
  result.mean_ms = total_ms / static_cast<double>(reps);
  result.best_rounds_per_sec = 1000.0 / result.best_ms;
  return result;
}

/// Times the round in which a large flash crowd lands, with and without
/// the tracker/peer-store pre-reserve path, best-of `reps`.
double burst_round_ms(bool pre_reserve, std::uint32_t torrents, std::uint32_t burst,
                      int reps, std::uint64_t seed, bool quick) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    eco::EcosystemConfig config =
        bench_config(torrents, seed + static_cast<std::uint64_t>(rep), quick);
    config.pre_reserve = pre_reserve;
    config.flash_crowds.push_back({/*round=*/8, burst, /*torrent=*/0});
    eco::Ecosystem ecosystem(std::move(config), /*jobs=*/1);
    ecosystem.run_rounds(8);  // rounds 0..7: steady state
    const auto start = std::chrono::steady_clock::now();
    ecosystem.step();  // round 8: the burst lands
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

/// google-benchmark JSON schema subset, as consumed by
/// report::parse_google_benchmark.
void write_json(const std::string& path, const std::vector<StepResult>& results) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open " + path);
  }
  file.precision(17);
  file << "{\n  \"context\": {\"executable\": \"bench_ecosystem_step\"},\n"
       << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StepResult& r = results[i];
    file << "    {\"name\": \"BM_EcosystemStep/" << r.torrents
         << "\", \"run_type\": \"iteration\", "
         << "\"real_time\": " << r.best_ms << ", \"cpu_time\": " << r.best_ms
         << ", \"time_unit\": \"ms\", \"iterations\": " << r.reps * r.rounds << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  file << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_ecosystem_step",
                      "Round-step throughput of eco::Ecosystem at fixed torrent counts.");
  cli.add_option("torrents", "comma-separated torrent counts", "4,16");
  cli.add_option("rounds", "measured rounds per repetition", "20");
  cli.add_option("warmup", "warmup rounds before timing", "8");
  cli.add_option("runs", "repetitions per count (best-of)", "3");
  cli.add_option("jobs", "worker threads for swarm stepping (results identical)", "1");
  cli.add_option("seed", "base RNG seed", "42");
  cli.add_flag("quick", "small ecosystems / short windows for smoke runs");
  cli.add_option("csv", "also write the table to this CSV path", "");
  cli.add_option("json", "write google-benchmark JSON here (for --append-bench)", "");
  cli.add_option("log-level", "debug|info|warn|error|off (default: warn, or $MPBT_LOG)", "");
  try {
    if (!cli.parse(argc, argv)) {
      return 0;
    }
    if (const std::string level = cli.get("log-level"); !level.empty()) {
      util::set_log_level(util::parse_log_level(level));
    }
    const bool quick = cli.has_flag("quick");
    std::vector<std::uint32_t> torrent_counts = parse_torrent_list(cli.get("torrents"));
    int rounds = std::max(1, static_cast<int>(cli.get_int("rounds")));
    int warmup = std::max(0, static_cast<int>(cli.get_int("warmup")));
    int reps = std::max(1, static_cast<int>(cli.get_int("runs")));
    if (quick) {
      torrent_counts = {4};
      rounds = std::min(rounds, 8);
      warmup = std::min(warmup, 3);
      reps = std::min(reps, 2);
    }
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto jobs = static_cast<std::size_t>(std::max(0LL, cli.get_int("jobs")));

    std::cout << "== bench_ecosystem_step — Ecosystem::step() throughput (jobs=" << jobs
              << ") ==\n\n";
    util::Table table({"torrents", "peers (max)", "rounds", "reps", "ms/round (mean)",
                       "ms/round (best)", "rounds/s (best)"});
    table.set_precision(3);
    std::vector<StepResult> results;
    for (const std::uint32_t torrents : torrent_counts) {
      const StepResult r = measure(torrents, reps, warmup, rounds, jobs, seed, quick);
      table.add_row({static_cast<long long>(r.torrents), static_cast<long long>(r.population),
                     static_cast<long long>(r.rounds), static_cast<long long>(r.reps), r.mean_ms,
                     r.best_ms, r.best_rounds_per_sec});
      results.push_back(r);
    }
    table.print_text(std::cout);

    // Pre-reserve ablation: the flash-crowd burst round pays tracker and
    // peer-store reallocation churn unless the registries were sized
    // ahead of the spike.
    const std::uint32_t burst_torrents = torrent_counts.front();
    const std::uint32_t burst = quick ? 2000 : 10000;
    const double with_reserve = burst_round_ms(true, burst_torrents, burst, reps, seed, quick);
    const double without_reserve =
        burst_round_ms(false, burst_torrents, burst, reps, seed, quick);
    std::cout << "\nflash-crowd burst round (" << burst << " sessions into torrent 0):\n";
    util::Table ablation({"pre_reserve", "burst-round ms (best)"});
    ablation.set_precision(3);
    ablation.add_row({std::string("on"), with_reserve});
    ablation.add_row({std::string("off"), without_reserve});
    ablation.print_text(std::cout);

    if (const std::string csv = cli.get("csv"); !csv.empty()) {
      table.write_csv_file(csv);
      std::cout << "\n[csv written to " << csv << "]\n";
    }
    if (const std::string json = cli.get("json"); !json.empty()) {
      write_json(json, results);
      std::cout << "[json written to " << json << "]\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "bench_ecosystem_step: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
