// Ablation C2: network coding (ref. [5]) vs piece-based BitTorrent.
//
// Gkantsidis & Rodriguez's claim, as summarized in the paper's Section
// 2.2: network coding "is particularly useful when the network
// connectivity among peers is poor and the degree of outgoing connections
// of a peer is low". This bench runs both systems at matched (B, k, s,
// lambda) across a connectivity sweep and reports download times and the
// end-of-download stall: coded swarms have no last-piece problem (any
// peer with different knowledge can help), piece-based swarms do.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "coding/coded_swarm.hpp"
#include "numeric/stats.hpp"

namespace {

using namespace mpbt;

struct SideResult {
  numeric::Summary downloads;
  double last_stretch_ttd = 0.0;  // mean TTD of the final 10% of ordinals
};

SideResult run_piece_based(std::uint32_t s, std::uint32_t k, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 40 : 60;
  config.max_connections = k;
  config.peer_set_size = s;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seeds_serve_all = true;
  config.seed = seed;
  bt::Swarm swarm(std::move(config));
  swarm.run_rounds(quick ? 200 : 300);
  SideResult out;
  out.downloads = numeric::summarize(swarm.metrics().download_times());
  double sum = 0.0;
  int count = 0;
  for (std::uint32_t ordinal = swarm.config().num_pieces * 9 / 10;
       ordinal <= swarm.config().num_pieces; ++ordinal) {
    const double t = swarm.metrics().ttd(ordinal);
    if (t >= 0.0) {
      sum += t;
      ++count;
    }
  }
  out.last_stretch_ttd = count == 0 ? -1.0 : sum / count;
  return out;
}

SideResult run_coded(std::uint32_t s, std::uint32_t k, std::uint64_t seed, bool quick) {
  coding::CodedSwarmConfig config;
  config.num_pieces = quick ? 40 : 60;
  config.max_connections = k;
  config.peer_set_size = s;
  config.arrival_rate = 1.0;
  config.initial_seeds = 1;
  config.seed_capacity = 4;
  config.seed = seed;
  coding::CodedSwarm swarm(std::move(config));
  swarm.run_rounds(quick ? 200 : 300);
  SideResult out;
  out.downloads = numeric::summarize(swarm.completion_times());
  double sum = 0.0;
  int count = 0;
  for (std::uint32_t ordinal = swarm.config().num_pieces * 9 / 10;
       ordinal <= swarm.config().num_pieces; ++ordinal) {
    const double t = swarm.rank_ttd(ordinal);
    if (t >= 0.0) {
      sum += t;
      ++count;
    }
  }
  out.last_stretch_ttd = count == 0 ? -1.0 : sum / count;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "coding_vs_bittorrent",
      "ref. [5] contrast: network coding vs pieces across connectivity");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation C2", "network coding vs piece-based BitTorrent");

  util::Table table({"s", "k", "system", "completed", "mean download", "p95 download",
                     "last-stretch TTD"});
  table.set_precision(2);
  struct Cell {
    std::uint32_t s;
    std::uint32_t k;
  };
  for (const Cell cell : {Cell{3, 2}, Cell{6, 3}, Cell{20, 5}}) {
    SideResult piece_total;
    SideResult coded_total;
    std::vector<double> piece_downloads;
    std::vector<double> coded_downloads;
    double piece_ttd = 0.0;
    double coded_ttd = 0.0;
    for (int run = 0; run < options->runs; ++run) {
      const std::uint64_t seed = options->seed + static_cast<std::uint64_t>(run) * 101;
      const SideResult piece = run_piece_based(cell.s, cell.k, seed, options->quick);
      const SideResult coded = run_coded(cell.s, cell.k, seed, options->quick);
      piece_ttd += piece.last_stretch_ttd / options->runs;
      coded_ttd += coded.last_stretch_ttd / options->runs;
      piece_total.downloads.count += piece.downloads.count;
      coded_total.downloads.count += coded.downloads.count;
      piece_downloads.push_back(piece.downloads.mean);
      coded_downloads.push_back(coded.downloads.mean);
      piece_total.downloads.p95 += piece.downloads.p95 / options->runs;
      coded_total.downloads.p95 += coded.downloads.p95 / options->runs;
    }
    const double piece_mean = numeric::summarize(piece_downloads).mean;
    const double coded_mean = numeric::summarize(coded_downloads).mean;
    table.add_row({static_cast<long long>(cell.s), static_cast<long long>(cell.k),
                   std::string("pieces"),
                   static_cast<long long>(piece_total.downloads.count), piece_mean,
                   piece_total.downloads.p95, piece_ttd});
    table.add_row({static_cast<long long>(cell.s), static_cast<long long>(cell.k),
                   std::string("coded"),
                   static_cast<long long>(coded_total.downloads.count), coded_mean,
                   coded_total.downloads.p95, coded_ttd});
  }
  bench::emit_table(table, *options);
  std::cout << "\nThe coding advantage concentrates where connectivity is poor (small\n"
               "s, k): the piece-based last-stretch TTD inflates while coded rank\n"
               "increments stay flat — ref. [5]'s conclusion as cited in Section 2.2.\n";
  return 0;
}
