// Figure 3/4(b): effect of B on successful downloads — population over time.
//
// Starting from a heavily skewed initial piece distribution, the swarm
// with B = 3 pieces cannot re-balance: completed peers leave with the rare
// copies, the backlog of unfinished peers grows without bound. With B = 10
// the trading phase lasts long enough to re-replicate rare pieces and the
// population stays bounded (paper, Section 6).
#include <iostream>

#include "bench_common.hpp"
#include "stability/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mpbt;
  const auto options = bench::parse_bench_options(
      argc, argv, "fig3b_population_stability",
      "Fig. 3/4(b): number of peers over time for B = 3 vs B = 10");
  if (!options) {
    return 0;
  }
  bench::print_banner("Figure 3/4(b)", "effect of B on successful downloads (# peers)");

  stability::StabilityConfig base;
  base.rounds = options->quick ? 120 : 250;
  base.arrival_rate = 4.0;
  base.initial_peers = options->quick ? 150 : 300;
  base.seed = options->seed;

  stability::StabilityConfig small_b = base;
  small_b.num_pieces = 3;
  stability::StabilityConfig large_b = base;
  large_b.num_pieces = 10;

  const stability::StabilityResult r3 = run_stability_experiment(small_b);
  const stability::StabilityResult r10 = run_stability_experiment(large_b);

  util::Table table({"round", "# peers (B=3)", "# peers (B=10)"});
  const std::uint32_t step = base.rounds / 25 == 0 ? 1 : base.rounds / 25;
  for (std::uint32_t r = 0; r < base.rounds; r += step) {
    table.add_row({static_cast<long long>(r),
                   static_cast<long long>(r3.population.value_at(r)),
                   static_cast<long long>(r10.population.value_at(r))});
  }
  bench::emit_table(table, *options);

  std::cout << "\nB=3:  peak population " << r3.peak_population << ", completed "
            << r3.completed << ", diverged: " << (r3.diverged ? "yes" : "no") << '\n';
  std::cout << "B=10: peak population " << r10.peak_population << ", completed "
            << r10.completed << ", diverged: " << (r10.diverged ? "yes" : "no") << '\n';
  return 0;
}
