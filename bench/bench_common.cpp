#include "bench_common.hpp"

#include "analysis/calibrate.hpp"

namespace mpbt::bench {

std::optional<BenchOptions> parse_bench_options(int argc, const char* const* argv,
                                                const std::string& name,
                                                const std::string& description) {
  util::CliParser cli(name, description);
  cli.add_option("seed", "base RNG seed", "42");
  cli.add_option("runs", "independent repetitions to average", "3");
  cli.add_option("jobs", "worker threads for repetitions (0 = all cores)", "0");
  cli.add_flag("quick", "smaller workloads for smoke runs");
  cli.add_option("csv", "also write the table to this CSV path", "");
  if (!cli.parse(argc, argv)) {
    return std::nullopt;
  }
  BenchOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.runs = std::max(1, static_cast<int>(cli.get_int("runs")));
  options.jobs = std::max(0, static_cast<int>(cli.get_int("jobs")));
  options.quick = cli.has_flag("quick");
  options.csv_path = cli.get("csv");
  return options;
}

std::size_t effective_jobs(const BenchOptions& options) {
  return options.jobs > 0 ? static_cast<std::size_t>(options.jobs)
                          : exp::ThreadPool::default_jobs();
}

void emit_table(const util::Table& table, const BenchOptions& options) {
  table.print_text(std::cout);
  if (!options.csv_path.empty()) {
    table.write_csv_file(options.csv_path);
    std::cout << "\n[csv written to " << options.csv_path << "]\n";
  }
}

void print_banner(const std::string& experiment_id, const std::string& what) {
  std::cout << "== " << experiment_id << " — " << what << " ==\n"
            << "   (Rai et al., \"A Multiphased Approach for Modeling and Analysis of\n"
            << "    the BitTorrent Protocol\", ICDCS 2007)\n\n";
}

model::ModelParams calibrate_from_swarm(const bt::Swarm& swarm, double w, double gamma) {
  analysis::CalibrationOptions options;
  options.w = w;
  options.gamma = gamma;
  return analysis::calibrate_model(swarm, options);
}

}  // namespace mpbt::bench
