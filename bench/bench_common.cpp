#include "bench_common.hpp"

#include "analysis/calibrate.hpp"
#include "exp/metrics_export.hpp"
#include "exp/sink.hpp"
#include "obs/chrome_trace.hpp"
#include "util/logging.hpp"

namespace mpbt::bench {

std::optional<BenchOptions> parse_bench_options(int argc, const char* const* argv,
                                                const std::string& name,
                                                const std::string& description) {
  util::CliParser cli(name, description);
  cli.add_option("seed", "base RNG seed", "42");
  cli.add_option("runs", "independent repetitions to average", "3");
  cli.add_option("jobs", "worker threads for repetitions (0 = all cores)", "0");
  cli.add_flag("quick", "smaller workloads for smoke runs");
  cli.add_option("csv", "also write the table to this CSV path", "");
  cli.add_option("trace", "write a Chrome trace-event JSON to this path", "");
  cli.add_option("metrics", "write the metrics snapshot to this path (jsonl/csv)", "");
  cli.add_option("log-level", "debug|info|warn|error|off (default: warn, or $MPBT_LOG)", "");
  if (!cli.parse(argc, argv)) {
    return std::nullopt;
  }
  if (const std::string level = cli.get("log-level"); !level.empty()) {
    util::set_log_level(util::parse_log_level(level));  // throws on bad names
  }
  BenchOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.runs = std::max(1, static_cast<int>(cli.get_int("runs")));
  options.jobs = std::max(0, static_cast<int>(cli.get_int("jobs")));
  options.quick = cli.has_flag("quick");
  options.csv_path = cli.get("csv");
  options.trace_path = cli.get("trace");
  options.metrics_path = cli.get("metrics");
  if (!options.trace_path.empty() || !options.metrics_path.empty()) {
    options.obs = std::make_shared<ObsState>();
    options.obs->want_trace = !options.trace_path.empty();
  }
  return options;
}

std::size_t effective_jobs(const BenchOptions& options) {
  return options.jobs > 0 ? static_cast<std::size_t>(options.jobs)
                          : exp::ThreadPool::default_jobs();
}

void write_observability(const BenchOptions& options) {
  if (options.obs == nullptr) {
    return;
  }
  if (!options.trace_path.empty()) {
    obs::write_chrome_trace(options.trace_path, options.obs->traces, &options.obs->profiler);
    std::cout << "[trace written to " << options.trace_path << " ("
              << options.obs->traces.total_events() << " events)]\n";
  }
  if (!options.metrics_path.empty()) {
    const obs::MetricsSnapshot snapshot = options.obs->registry.snapshot();
    std::unique_ptr<exp::Sink> sink;
    if (options.metrics_path.ends_with(".csv")) {
      sink = std::make_unique<exp::CsvSink>(options.metrics_path);
    } else {
      sink = std::make_unique<exp::JsonlSink>(options.metrics_path);
    }
    exp::write_metrics_snapshot(snapshot, *sink);
    sink->flush();
    std::cout << "[metrics written to " << options.metrics_path << "]\n";
  }
}

void emit_table(const util::Table& table, const BenchOptions& options) {
  table.print_text(std::cout);
  if (!options.csv_path.empty()) {
    table.write_csv_file(options.csv_path);
    std::cout << "\n[csv written to " << options.csv_path << "]\n";
  }
  write_observability(options);
}

void print_banner(const std::string& experiment_id, const std::string& what) {
  std::cout << "== " << experiment_id << " — " << what << " ==\n"
            << "   (Rai et al., \"A Multiphased Approach for Modeling and Analysis of\n"
            << "    the BitTorrent Protocol\", ICDCS 2007)\n\n";
}

model::ModelParams calibrate_from_swarm(const bt::Swarm& swarm, double w, double gamma) {
  analysis::CalibrationOptions options;
  options.w = w;
  options.gamma = gamma;
  return analysis::calibrate_model(swarm, options);
}

}  // namespace mpbt::bench
