// Shared plumbing for the figure-reproduction bench binaries.
//
// Every bench accepts:
//   --seed=<n>    base RNG seed (default 42)
//   --runs=<n>    independent seeded repetitions to average (default 3)
//   --jobs=<n>    worker threads for repetitions (default 0 = all cores)
//   --quick       smaller workloads for smoke runs
//   --csv=<path>  also write the table as CSV
// and prints the paper figure's rows/series as an aligned text table.
//
// Repetition loops run on an exp::ThreadPool via run_indexed below. Each
// repetition owns its seed and its results land in index order, so the
// printed tables are bit-identical to the old serial loops for any
// --jobs value — parallelism only changes wall-clock.
#pragma once

#include <cstddef>
#include <iostream>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "bt/swarm.hpp"
#include "exp/thread_pool.hpp"
#include "model/params.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace mpbt::bench {

struct BenchOptions {
  std::uint64_t seed = 42;
  int runs = 3;
  int jobs = 0;  // 0 = all hardware threads
  bool quick = false;
  std::string csv_path;  // empty = no CSV
};

/// Worker-thread count for this run: --jobs, or every hardware thread.
std::size_t effective_jobs(const BenchOptions& options);

/// Runs fn(i) for i in [0, count) on a fresh pool sized by --jobs and
/// returns the results in index order. The result type must be default-
/// constructible. Aggregate on the caller side in index order and the
/// output matches the serial loop exactly.
template <typename Fn>
auto run_indexed(const BenchOptions& options, int count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, int>> {
  using R = std::invoke_result_t<Fn&, int>;
  std::vector<R> results(static_cast<std::size_t>(count));
  exp::ThreadPool pool(effective_jobs(options));
  exp::parallel_for_each(pool, static_cast<std::size_t>(count),
                         [&](std::size_t i) { results[i] = fn(static_cast<int>(i)); });
  return results;
}

/// Parses the standard bench flags; returns nullopt if --help was shown.
std::optional<BenchOptions> parse_bench_options(int argc, const char* const* argv,
                                                const std::string& name,
                                                const std::string& description);

/// Prints the table to stdout and writes CSV when requested.
void emit_table(const util::Table& table, const BenchOptions& options);

/// Prints a header banner naming the paper artifact being reproduced.
void print_banner(const std::string& experiment_id, const std::string& what);

/// Model parameters calibrated from a finished swarm run: B, k, s copied
/// from the config; p_r / p_n / p_init measured; alpha and gamma from the
/// paper's formula alpha = lambda * w * s / N with the given w.
model::ModelParams calibrate_from_swarm(const bt::Swarm& swarm, double w = 0.5,
                                        double gamma = 0.1);

}  // namespace mpbt::bench
