// Shared plumbing for the figure-reproduction bench binaries.
//
// Every bench accepts:
//   --seed=<n>    base RNG seed (default 42)
//   --runs=<n>    independent seeded repetitions to average (default 3)
//   --quick       smaller workloads for smoke runs
//   --csv=<path>  also write the table as CSV
// and prints the paper figure's rows/series as an aligned text table.
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "bt/swarm.hpp"
#include "model/params.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace mpbt::bench {

struct BenchOptions {
  std::uint64_t seed = 42;
  int runs = 3;
  bool quick = false;
  std::string csv_path;  // empty = no CSV
};

/// Parses the standard bench flags; returns nullopt if --help was shown.
std::optional<BenchOptions> parse_bench_options(int argc, const char* const* argv,
                                                const std::string& name,
                                                const std::string& description);

/// Prints the table to stdout and writes CSV when requested.
void emit_table(const util::Table& table, const BenchOptions& options);

/// Prints a header banner naming the paper artifact being reproduced.
void print_banner(const std::string& experiment_id, const std::string& what);

/// Model parameters calibrated from a finished swarm run: B, k, s copied
/// from the config; p_r / p_n / p_init measured; alpha and gamma from the
/// paper's formula alpha = lambda * w * s / N with the given w.
model::ModelParams calibrate_from_swarm(const bt::Swarm& swarm, double w = 0.5,
                                        double gamma = 0.1);

}  // namespace mpbt::bench
