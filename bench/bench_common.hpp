// Shared plumbing for the figure-reproduction bench binaries.
//
// Every bench accepts:
//   --seed=<n>        base RNG seed (default 42)
//   --runs=<n>        independent seeded repetitions to average (default 3)
//   --jobs=<n>        worker threads for repetitions (default 0 = all cores)
//   --quick           smaller workloads for smoke runs
//   --csv=<path>      also write the table as CSV
//   --trace=<path>    write a Chrome trace-event JSON of the run
//   --metrics=<path>  write the metrics-registry snapshot (jsonl/csv)
//   --log-level=<l>   debug|info|warn|error|off
// and prints the paper figure's rows/series as an aligned text table.
//
// Repetition loops run on an exp::ThreadPool via run_indexed below. Each
// repetition owns its seed and its results land in index order, so the
// printed tables are bit-identical to the old serial loops for any
// --jobs value — parallelism only changes wall-clock. Tracing rides the
// same guarantee: swarms pick the per-repetition recorder up from the
// thread-local obs::TaskScope, draw no randomness for it, and therefore
// cannot perturb the table.
#pragma once

#include <cstddef>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "bt/swarm.hpp"
#include "exp/thread_pool.hpp"
#include "model/params.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace mpbt::bench {

/// Observability state shared by every run_indexed call of one bench
/// process; allocated only when --trace or --metrics was given.
struct ObsState {
  obs::Registry registry;
  obs::TraceCollector traces;
  obs::WallProfiler profiler;
  bool want_trace = false;  // collect events + worker spans, not just metrics
  std::size_t next_task = 0;  // lane allocator across run_indexed calls
};

struct BenchOptions {
  std::uint64_t seed = 42;
  int runs = 3;
  int jobs = 0;  // 0 = all hardware threads
  bool quick = false;
  std::string csv_path;      // empty = no CSV
  std::string trace_path;    // empty = no Chrome trace
  std::string metrics_path;  // empty = no metrics snapshot
  std::shared_ptr<ObsState> obs;  // null unless trace/metrics requested
};

/// Worker-thread count for this run: --jobs, or every hardware thread.
std::size_t effective_jobs(const BenchOptions& options);

/// Runs fn(i) for i in [0, count) on a fresh pool sized by --jobs and
/// returns the results in index order. The result type must be default-
/// constructible. Aggregate on the caller side in index order and the
/// output matches the serial loop exactly.
///
/// When options.obs is set, each index runs under an obs::TaskScope so
/// any Swarm built inside fn feeds the registry (and, with --trace, a
/// per-index recorder whose events land in the bench's trace file).
template <typename Fn>
auto run_indexed(const BenchOptions& options, int count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, int>> {
  using R = std::invoke_result_t<Fn&, int>;
  std::vector<R> results(static_cast<std::size_t>(count));
  ObsState* state = options.obs.get();
  // Lanes must be unique across successive run_indexed calls within one
  // bench; reserve a contiguous block up front (call sites are serial).
  const std::size_t task_base = state != nullptr ? state->next_task : 0;
  if (state != nullptr) {
    state->next_task += static_cast<std::size_t>(count);
  }
  exp::ThreadPool pool(effective_jobs(options));
  if (state != nullptr && state->want_trace) {
    pool.set_profiler(&state->profiler);
  }
  exp::parallel_for_each(pool, static_cast<std::size_t>(count), [&](std::size_t i) {
    if (state == nullptr) {
      results[i] = fn(static_cast<int>(i));
      return;
    }
    std::optional<obs::TraceRecorder> recorder;
    if (state->want_trace) {
      recorder.emplace();
      recorder->set_registry(&state->registry);
    }
    const obs::TaskScope scope(recorder.has_value() ? &*recorder : nullptr, &state->registry);
    results[i] = fn(static_cast<int>(i));
    if (recorder.has_value()) {
      obs::TaskTrace trace;
      trace.task = task_base + i;
      trace.label = "rep " + std::to_string(task_base + i);
      trace.events = recorder->events();
      trace.dropped = recorder->dropped();
      state->traces.add(std::move(trace));
    }
  });
  return results;
}

/// Parses the standard bench flags; returns nullopt if --help was shown.
std::optional<BenchOptions> parse_bench_options(int argc, const char* const* argv,
                                                const std::string& name,
                                                const std::string& description);

/// Prints the table to stdout and writes CSV when requested. Also
/// finalizes observability output: --trace and --metrics files are
/// written here, after all run_indexed calls have completed.
void emit_table(const util::Table& table, const BenchOptions& options);

/// Writes the Chrome trace and/or metrics snapshot for this run; no-op
/// when observability was not requested. emit_table calls this; benches
/// that never print a table can call it directly.
void write_observability(const BenchOptions& options);

/// Prints a header banner naming the paper artifact being reproduced.
void print_banner(const std::string& experiment_id, const std::string& what);

/// Model parameters calibrated from a finished swarm run: B, k, s copied
/// from the config; p_r / p_n / p_init measured; alpha and gamma from the
/// paper's formula alpha = lambda * w * s / N with the given w.
model::ModelParams calibrate_from_swarm(const bt::Swarm& swarm, double w = 0.5,
                                        double gamma = 0.1);

}  // namespace mpbt::bench
