// Figure 3/4(a): impact of the maximum number of connections k on the
// efficiency of the system — balance-equation model vs swarm simulation.
//
// Paper result: efficiency jumps from k = 1 to k = 2 and saturates beyond;
// the model (an upper-bound iteration) overestimates the simulation the
// most at k = 1 and by under a few percent at larger k. The model consumes
// the re-encounter probability p_r measured from the simulation at each k
// (the paper's own explanation of the k = 1 dip is that connection
// lifetimes are endogenously shorter with a single connection).
#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "efficiency/balance.hpp"
#include "stability/entropy.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig swarm_config(std::uint32_t k, std::uint64_t seed, bool quick) {
  bt::SwarmConfig config;
  config.num_pieces = quick ? 100 : 200;
  config.max_connections = k;
  config.peer_set_size = 40;
  config.arrival_rate = 3.0;
  config.initial_seeds = 2;
  config.seed_capacity = 4;
  config.seed = seed;
  // Keep the swarm in a steady mixed-completion state (the model's ϕ
  // assumption): both the warm group and arrivals carry age-correlated
  // content (older pieces more replicated, a linear ramp). The correlation
  // keeps pairwise novelty realistic, which is what makes the k = 1
  // efficiency dip visible — a sole connection exhausts its exchangeable
  // pieces and dies (the paper's explanation in Section 5).
  const std::vector<double> ramp = stability::ramp_piece_probs(config.num_pieces, 0.75, 0.05);
  bt::InitialGroup warm;
  warm.count = 100;
  warm.piece_probs = ramp;
  config.initial_groups.push_back(std::move(warm));
  config.arrival_piece_probs = ramp;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "fig3a_efficiency_vs_k", "Fig. 3/4(a): efficiency vs k, model vs simulation");
  if (!options) {
    return 0;
  }
  bench::print_banner("Figure 3/4(a)", "impact of k on the efficiency of the system");

  const bt::Round rounds = options->quick ? 150 : 300;
  const bt::Round warmup = rounds / 4;

  util::Table table({"k", "simulation eta", "model eta", "measured p_r", "model - sim"});
  table.set_precision(4);

  // All (k, run) swarms are independent — fan them over the worker pool.
  // Results come back in index order and are aggregated in the same run
  // order as the old serial loop, so the table is bit-identical.
  struct RunResult {
    double sim_eta = 0.0;
    double p_r = 0.0;
    double population = 0.0;
  };
  constexpr std::uint32_t kMax = 8;
  const int runs = options->runs;
  const auto results =
      bench::run_indexed(*options, static_cast<int>(kMax) * runs, [&](int index) {
        const auto k = static_cast<std::uint32_t>(index / runs) + 1;
        const int run = index % runs;
        bt::Swarm swarm(swarm_config(
            k, options->seed + static_cast<std::uint64_t>(run) * 173, options->quick));
        swarm.run_rounds(rounds);
        return RunResult{swarm.metrics().mean_transfer_efficiency(warmup),
                         swarm.metrics().estimated_p_r(),
                         static_cast<double>(swarm.population())};
      });

  for (std::uint32_t k = 1; k <= kMax; ++k) {
    double sim_eta_sum = 0.0;
    double p_r_sum = 0.0;
    double population_sum = 0.0;
    for (int run = 0; run < runs; ++run) {
      const RunResult& result = results[(k - 1) * static_cast<std::uint32_t>(runs) +
                                        static_cast<std::uint32_t>(run)];
      sim_eta_sum += result.sim_eta;
      p_r_sum += result.p_r;
      population_sum += result.population;
    }
    const double sim_eta = sim_eta_sum / options->runs;
    const double p_r = p_r_sum / options->runs;

    efficiency::EfficiencyParams params;
    params.k = static_cast<int>(k);
    params.p_r = p_r;
    params.N = std::max(2.0, population_sum / options->runs);
    const double model_eta = efficiency::EfficiencySolver(params).solve().eta;
    table.add_row({static_cast<long long>(k), sim_eta, model_eta, p_r, model_eta - sim_eta});
  }
  bench::emit_table(table, *options);
  return 0;
}
