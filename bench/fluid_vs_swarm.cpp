// Ablation F1: the Qiu–Srikant fluid model (ref. [9]) vs the swarm
// simulator.
//
// Section 2.2's argument for protocol-level modeling: fluid models capture
// aggregate population dynamics but "hide protocol dynamics". This bench
// shows both sides: (i) with matched parameters the fluid ODE tracks the
// simulator's leecher population to a comparable steady level, while
// (ii) the per-peer phase structure (bootstrap stalls, potential-set
// collapse) that drives the paper's analysis is invisible to the fluid
// state — demonstrated by the potential-ratio dip the simulator reports.
#include <iostream>

#include "bench_common.hpp"
#include "bt/swarm.hpp"
#include "fluid/qiu_srikant.hpp"

namespace {

using namespace mpbt;

bt::SwarmConfig swarm_config(std::uint64_t seed) {
  bt::SwarmConfig config;
  config.num_pieces = 100;
  config.max_connections = 5;
  config.peer_set_size = 30;
  config.arrival_rate = 3.0;
  config.initial_seeds = 1;
  config.seed_capacity = 6;
  config.seeds_serve_all = true;   // realistic swarm: seeds upload to all
  config.seed_linger_rounds = 20;  // completed peers seed for 20 rounds
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "fluid_vs_swarm",
      "Ablation F1: Qiu-Srikant fluid model vs the protocol-level simulator");
  if (!options) {
    return 0;
  }
  bench::print_banner("Ablation F1", "fluid model (ref. [9]) vs swarm simulation");

  const bt::Round rounds = options->quick ? 150 : 300;
  bt::Swarm swarm(swarm_config(options->seed));
  swarm.run_rounds(rounds);

  // Matched fluid parameters: one round = one time unit; gamma is the
  // reciprocal of the seed linger time; eta is the measured upload
  // utilization. The per-peer capacity c is NOT derivable from protocol
  // parameters alone (seed service and trading both contribute), so it is
  // calibrated from the measured mean download time — exactly the paper's
  // Section 2.2 point that fluid models "rely on specific input
  // parameters, which are not trivial to obtain", while the multiphased
  // model consumes protocol-level quantities directly.
  double mean_download = 0.0;
  for (double t : swarm.metrics().download_times()) {
    mean_download += t;
  }
  mean_download = swarm.metrics().completed_count() == 0
                      ? static_cast<double>(rounds)
                      : mean_download / static_cast<double>(swarm.metrics().completed_count());
  fluid::FluidParams params;
  params.lambda = swarm.config().arrival_rate;
  params.c = 1.0 / mean_download;
  params.mu = params.c;
  params.eta = swarm.metrics().mean_transfer_efficiency(rounds / 4);
  params.gamma = 1.0 / static_cast<double>(swarm.config().seed_linger_rounds);
  params.theta = 0.0;

  const fluid::FluidTrajectory fluid_run =
      fluid::integrate(params, {0.0, 1.0}, static_cast<double>(rounds), 0.05);
  const fluid::FluidState eq = fluid::steady_state(params);

  util::Table table({"round", "sim leechers", "fluid x(t)", "sim seeds", "fluid y(t)"});
  table.set_precision(1);
  const bt::Round step = rounds / 20 == 0 ? 1 : rounds / 20;
  for (bt::Round r = 0; r < rounds; r += step) {
    const auto t = static_cast<double>(r);
    table.add_row({static_cast<long long>(r), swarm.metrics().population().value_at(t),
                   fluid_run.leechers.value_at(t), swarm.metrics().seeds().value_at(t),
                   fluid_run.seeds.value_at(t)});
  }
  bench::emit_table(table, *options);

  std::cout << "\nfluid steady state: x* = " << eq.x << ", y* = " << eq.y
            << ", download time T = " << fluid::steady_state_download_time(params)
            << " rounds\n";
  std::cout << "sim steady leechers (tail mean): ";
  {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : swarm.metrics().population().samples()) {
      if (s.time >= rounds * 0.5) {
        sum += s.value;
        ++n;
      }
    }
    std::cout << (n ? sum / static_cast<double>(n) : 0.0) << '\n';
  }

  // What the fluid model cannot see: the phase structure.
  std::cout << "\npotential-set ratio (simulator; invisible to fluid state):\n";
  util::Table phases({"pieces", "potential/NS ratio"});
  phases.set_precision(3);
  const std::uint32_t B = swarm.config().num_pieces;
  for (std::uint32_t b = 0; b <= B; b += B / 10) {
    phases.add_row({static_cast<long long>(b), swarm.metrics().potential_ratio(b)});
  }
  phases.print_text(std::cout);
  return 0;
}
